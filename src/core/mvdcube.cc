#include "src/core/mvdcube.h"

#include <algorithm>

#include "src/bitmap/roaring.h"
#include "src/util/timer.h"

namespace spade {

const MeasureVector& MeasureCache::Get(const AttributeStore& db, const CfsIndex& cfs,
                                       AttrId attr) {
  auto it = cache_.find(attr);
  if (it != cache_.end()) return it->second;
  SPADE_FAILPOINT("core.measure.load");
  auto [ins, _] = cache_.emplace(attr, BuildMeasureVector(db, cfs, attr));
  return ins->second;
}

void MeasureCache::Put(AttrId attr, MeasureVector mv) {
  cache_.emplace(attr, std::move(mv));
}

Mmst BuildMmstForSpec(const AttributeStore& db, const CfsIndex& cfs,
                      const LatticeSpec& spec,
                      std::vector<DimensionEncoding>* encodings,
                      int partition_chunk) {
  encodings->clear();
  encodings->reserve(spec.dims.size());
  std::vector<int> extents;
  for (AttrId d : spec.dims) {
    encodings->push_back(BuildDimensionEncoding(db, cfs, d));
    extents.push_back(encodings->back().domain_size());
  }
  return Mmst::Build(extents, partition_chunk);
}

namespace {

/// Bitmap cell for the scaffold.
struct BitmapCell {
  RoaringBitmap facts;
  bool Empty() const { return facts.Empty(); }
};

/// One MDA to evaluate at a lattice node.
struct NodeMda {
  size_t measure_index;  ///< into the lattice's measure list
  Arm::Handle handle;
  /// Index into the node's fold-slot list (the distinct measure attrs this
  /// node folds, computed once per node), or -1 for count(*). Several MDAs
  /// over the same attr (count/sum/avg/min/max) share one slot — the
  /// measure column is folded once per group, not once per MDA.
  int fold_slot = -1;
};

}  // namespace

MvdCubeStats EvaluateLatticeMvd(const AttributeStore& db, uint32_t cfs_id,
                                const CfsIndex& cfs, const LatticeSpec& spec,
                                const MvdCubeOptions& options, Arm* arm,
                                MeasureCache* measures,
                                const std::set<AggregateKey>* pruned,
                                const Translation* pre_translated,
                                const Mmst* pre_built,
                                const std::vector<DimensionEncoding>*
                                    pre_encodings,
                                TaskScheduler* scheduler,
                                size_t lattice_workers,
                                const CancelCheck* cancel,
                                uint64_t budget_bytes_used) {
  MvdCubeStats stats;
  Timer timer;
  size_t n = spec.dims.size();

  // --- Build MMST (dimension encodings + layout).
  std::vector<DimensionEncoding> local_encodings;
  Mmst local_mmst;
  const Mmst* mmst = pre_built;
  if (mmst == nullptr) {
    local_mmst =
        BuildMmstForSpec(db, cfs, spec, &local_encodings, options.partition_chunk);
    mmst = &local_mmst;
  } else if (pre_encodings == nullptr) {
    // Encodings still needed for value decoding.
    for (AttrId d : spec.dims) {
      local_encodings.push_back(BuildDimensionEncoding(db, cfs, d));
    }
  }
  const std::vector<DimensionEncoding>& encodings =
      pre_encodings != nullptr ? *pre_encodings : local_encodings;
  stats.num_nodes = mmst->nodes().size();
  stats.mmst_memory_cells = mmst->total_memory_cells();

  // --- Data Translation.
  Translation local_translation;
  const Translation* translation = pre_translated;
  if (translation == nullptr) {
    SPADE_FAILPOINT("core.translate");
    TranslationOptions topt;
    topt.max_combos_per_fact = options.max_combos_per_fact;
    local_translation = TranslateData(encodings, mmst->layout(), topt);
    translation = &local_translation;
  }
  for (const auto& p : translation->partitions) {
    stats.translation_cells += p.size();
  }
  stats.translate_ms = timer.ElapsedMillis();
  timer.Restart();

  // --- Measure Loading (shared across lattices via the cache).
  std::vector<const MeasureVector*> loaded(spec.measures.size(), nullptr);
  for (size_t m = 0; m < spec.measures.size(); ++m) {
    if (!spec.measures[m].is_count_star()) {
      loaded[m] = &measures->Get(db, cfs, spec.measures[m].attr);
    }
  }
  stats.measure_load_ms = timer.ElapsedMillis();
  timer.Restart();

  // --- Register MDAs per node; skip already-evaluated and pruned keys.
  size_t num_nodes = size_t{1} << n;
  std::vector<std::vector<NodeMda>> node_mdas(num_nodes);
  for (uint32_t mask = 0; mask < num_nodes; ++mask) {
    std::vector<AttrId> dims;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) dims.push_back(spec.dims[i]);
    }
    for (size_t m = 0; m < spec.measures.size(); ++m) {
      AggregateKey key;
      key.cfs_id = cfs_id;
      key.dims = dims;
      key.measure = spec.measures[m];
      if (pruned != nullptr && pruned->count(key)) {
        ++stats.num_mdas_pruned;
        continue;
      }
      if (arm->IsEvaluated(key)) {
        ++stats.num_mdas_reused;
        continue;
      }
      Arm::Handle handle = arm->Register(key);
      node_mdas[mask].push_back(NodeMda{m, handle, -1});
      ++stats.num_mdas_evaluated;
    }
  }

  // --- Per-node fold plan, built once outside the emit loop (PR 6): the
  // distinct measure columns each node touches. The emit fold then runs one
  // kernel call per (group, distinct attr); the old path re-tested
  // is_count_star per decoded block and re-folded the column once per MDA.
  const simd::FoldKernel fold_kernel = simd::ResolveFoldKernel(options.simd);
  stats.fold_kernel = fold_kernel.kind;
  std::vector<std::vector<const MeasureVector*>> node_slots(num_nodes);
  for (uint32_t mask = 0; mask < num_nodes; ++mask) {
    for (NodeMda& mda : node_mdas[mask]) {
      if (spec.measures[mda.measure_index].is_count_star()) continue;
      const MeasureVector* mv = loaded[mda.measure_index];
      std::vector<const MeasureVector*>& slots = node_slots[mask];
      size_t s = 0;
      while (s < slots.size() && slots[s] != mv) ++s;
      if (s == slots.size()) slots.push_back(mv);
      mda.fold_slot = static_cast<int>(s);
    }
  }

  // --- Lattice Computation: partition-parallel scaffold with canonical
  // merge-and-emit (ParallelLatticeRun). The same protocol runs at every
  // worker count — one slice, inline, at workers = 1 — so the ARM stream is
  // identical across all thread/shard/worker configurations by construction.
  // Skip MMST subtrees with no live MDA anywhere below them.
  std::vector<bool> wanted(num_nodes, false);
  for (uint32_t mask = 0; mask < num_nodes; ++mask) {
    wanted[mask] = !node_mdas[mask].empty();
  }
  // Translation emits each partition's (cell, fact) pairs in ascending fact
  // order, so every cell sees its facts ascending: the O(1) ordered-append
  // path applies (no container search, no sorted insert).
  auto load = [](BitmapCell* cell, FactId fact) {
    cell->facts.AppendOrdered(fact);
  };
  auto merge = [](BitmapCell* dst, const BitmapCell& src) {
    dst->facts.UnionWith(src.facts);
  };
  // Collection filter: nodes nobody consumes, and null-coordinate groups —
  // they exist only to feed descendants inside each slice's scaffold.
  auto keep = [&](uint32_t mask, Span<int32_t> coords) {
    if (node_mdas[mask].empty()) return false;
    for (size_t d = 0; d < n; ++d) {
      if ((mask & (1u << d)) && coords[d] >= encodings[d].null_code()) {
        return false;
      }
    }
    return true;
  };
  // Emit-side scratch, lattice-scoped and reused across every group.
  std::vector<TermId> dim_values;
  dim_values.reserve(n);
  std::vector<uint32_t> fact_span;  ///< full-cell decode buffer, reused
  std::vector<simd::FoldResult> fold_results;
  simd::FoldAcc fold_acc;
  auto emit = [&](uint32_t mask, Span<int32_t> coords, BitmapCell& cell) {
    const std::vector<NodeMda>& mdas = node_mdas[mask];
    const std::vector<const MeasureVector*>& slots = node_slots[mask];
    // All emitted cells of this lattice coexist in the merged partials, so
    // their summed footprint is the lattice's peak bitmap memory. The budget
    // check lives here, on the single-threaded canonical emit, because this
    // running sum is a pure function of the (bit-identical) group stream:
    // the cut point cannot depend on thread/shard/worker count. A trip
    // refuses the tripping group and everything after it, but deliberately
    // does not touch the shared cancel token — whether some *other* CFS had
    // already been admitted when this one tripped is timing-dependent, so a
    // budget trip must stay local to this CFS for the committed prefix to
    // be config-independent (Spade's commit rule cuts at the first
    // truncated CFS in cfs_id order).
    stats.bitmap_bytes_peak += cell.facts.MemoryBytes();
    if (!stats.budget_truncated && options.max_bitmap_bytes > 0 &&
        budget_bytes_used + stats.bitmap_bytes_peak >
            options.max_bitmap_bytes) {
      stats.budget_truncated = true;
    }
    if (stats.budget_truncated || (cancel != nullptr && cancel->AbortNow())) {
      stats.num_groups_skipped += mdas.size();
      return;
    }
    dim_values.clear();
    for (size_t d = 0; d < n; ++d) {
      if (!(mask & (1u << d))) continue;
      dim_values.push_back(encodings[d].values[coords[d]]);
    }
    double count_star = static_cast<double>(cell.facts.Cardinality());
    // One full-cell decode feeds one kernel call per distinct measure attr
    // of this node (the ⊗ of Figure 5, Section 4.3's intersect-and-fold).
    // The span is the group's sorted fact-id set — a pure function of the
    // group, independent of how the bitmap was assembled — and the kernel's
    // lane order is fixed, so the folded values are bit-identical at every
    // thread/shard/worker/kernel configuration.
    if (!slots.empty()) {
      cell.facts.DecodeInto(&fact_span);
      fold_results.resize(slots.size());
      for (size_t s = 0; s < slots.size(); ++s) {
        const MeasureVector& mv = *slots[s];
        fold_acc.Reset();
        fold_kernel.fn(fact_span.data(), fact_span.size(), mv.count.data(),
                       mv.sum.data(), mv.min.data(), mv.max.data(), &fold_acc);
        fold_results[s] = simd::Reduce(fold_acc);
      }
    }
    for (const NodeMda& mda : mdas) {
      const MeasureSpec& m = spec.measures[mda.measure_index];
      double value = 0;
      if (m.is_count_star()) {
        value = count_star;
      } else {
        const simd::FoldResult& acc = fold_results[mda.fold_slot];
        if (acc.count == 0) continue;  // no fact in the group has the measure
        switch (m.func) {
          case sparql::AggFunc::kCount:
            value = acc.count;
            break;
          case sparql::AggFunc::kSum:
            value = acc.sum;
            break;
          case sparql::AggFunc::kAvg:
            value = acc.sum / acc.count;
            break;
          case sparql::AggFunc::kMin:
            value = acc.min;
            break;
          case sparql::AggFunc::kMax:
            value = acc.max;
            break;
        }
      }
      arm->AddGroup(mda.handle, dim_values, value);
      ++stats.num_groups_emitted;
    }
  };
  ParallelLatticeRun<BitmapCell>(*mmst, *translation, &wanted, lattice_workers,
                                 scheduler, load, merge, keep, emit,
                                 &stats.lattice, cancel);
  stats.compute_ms = timer.ElapsedMillis();
  return stats;
}

}  // namespace spade
