#include "src/core/arraycube.h"

#include "src/core/reference.h"
#include "src/simd/measure_fold.h"

#include <cassert>
#include <algorithm>
#include <limits>
#include <map>

namespace spade {

namespace {

/// Per-measure value accumulator; the cell payload of classical ArrayCube.
struct ValueAcc {
  double count = 0;
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

struct ValueCell {
  double count_star = 0;
  /// Root fact buffer (strictly ascending: translation emits facts in id
  /// order and a fact's distinct value combinations land in distinct
  /// cells). Folded lazily through the shared measure-fold kernel
  /// (src/simd) on first merge/emit, then dropped — ArrayCube's root fold
  /// is the same gather-accumulate the MVDCube emit runs, so both
  /// algorithms vectorize through one kernel.
  std::vector<uint32_t> facts;
  bool folded = false;
  std::vector<ValueAcc> accs;  ///< one per measure attribute
  bool Empty() const { return count_star == 0; }
};

}  // namespace

std::vector<AggregateResult> EvaluateLatticeArrayCube(
    const AttributeStore& db, uint32_t cfs_id, const CfsIndex& cfs,
    const LatticeSpec& spec, const MvdCubeOptions& options,
    MeasureCache* measures) {
  size_t n = spec.dims.size();

  std::vector<DimensionEncoding> encodings;
  Mmst mmst =
      BuildMmstForSpec(db, cfs, spec, &encodings, options.partition_chunk);

  TranslationOptions topt;
  topt.max_combos_per_fact = options.max_combos_per_fact;
  Translation translation = TranslateData(encodings, mmst.layout(), topt);

  // Distinct measure attributes (functions share accumulators).
  std::vector<AttrId> measure_attrs;
  for (const auto& m : spec.measures) {
    if (!m.is_count_star()) measure_attrs.push_back(m.attr);
  }
  std::sort(measure_attrs.begin(), measure_attrs.end());
  measure_attrs.erase(std::unique(measure_attrs.begin(), measure_attrs.end()),
                      measure_attrs.end());
  std::vector<const MeasureVector*> loaded;
  loaded.reserve(measure_attrs.size());
  for (AttrId a : measure_attrs) loaded.push_back(&measures->Get(db, cfs, a));
  auto attr_slot = [&](AttrId a) {
    return static_cast<size_t>(
        std::lower_bound(measure_attrs.begin(), measure_attrs.end(), a) -
        measure_attrs.begin());
  };

  // Group accumulators per (node mask, dim values).
  std::map<std::pair<uint32_t, std::vector<TermId>>, ValueCell> collected;

  const simd::FoldKernel fold_kernel = simd::ResolveFoldKernel(options.simd);

  CubeScaffold<ValueCell> scaffold(&mmst);
  auto load = [&](ValueCell* cell, FactId fact) {
    // Root loading = one relational join row: the fact joins the cell once
    // per dimension-value combination. Only the fact id is recorded here;
    // the measure gather-accumulate is deferred so it runs as one
    // kernel-call fold per (cell, measure attr).
    assert(cell->facts.empty() || fact > cell->facts.back());
    cell->count_star += 1;
    cell->facts.push_back(fact);
  };
  // Fold a root cell's fact buffer into value accumulators via the shared
  // kernel, then drop the buffer. Idempotent; cells that only ever received
  // merges (every non-root node) have no buffer and fold to identity accs.
  auto fold_cell = [&](ValueCell* cell) {
    if (cell->folded) return;
    cell->folded = true;
    cell->accs.assign(measure_attrs.size(), ValueAcc());
    simd::FoldAcc lanes;
    for (size_t a = 0; a < measure_attrs.size(); ++a) {
      const MeasureVector& mv = *loaded[a];
      lanes.Reset();
      fold_kernel.fn(cell->facts.data(), cell->facts.size(), mv.count.data(),
                     mv.sum.data(), mv.min.data(), mv.max.data(), &lanes);
      const simd::FoldResult r = simd::Reduce(lanes);
      cell->accs[a] = ValueAcc{r.count, r.sum, r.min, r.max};
    }
    cell->facts.clear();
    cell->facts.shrink_to_fit();
  };
  auto merge = [&](ValueCell* dst, ValueCell& src) {
    // The incorrect step: combining aggregated values, not fact sets.
    // Folding src here (not at load) keeps the root pass allocation-light;
    // dst is always a sub-node cell built purely from merges, folded only
    // to normalize its acc layout.
    fold_cell(&src);
    fold_cell(dst);
    dst->count_star += src.count_star;
    for (size_t a = 0; a < src.accs.size(); ++a) {
      ValueAcc& d = dst->accs[a];
      const ValueAcc& s = src.accs[a];
      d.count += s.count;
      d.sum += s.sum;
      d.min = std::min(d.min, s.min);
      d.max = std::max(d.max, s.max);
    }
  };
  auto emit = [&](uint32_t mask, Span<int32_t> coords, ValueCell& cell) {
    fold_cell(&cell);
    std::vector<TermId> dim_values;
    for (size_t d = 0; d < n; ++d) {
      if (!(mask & (1u << d))) continue;
      if (coords[d] >= encodings[d].null_code()) return;  // null group
      dim_values.push_back(encodings[d].values[coords[d]]);
    }
    // The scaffold clears the cell right after emit, so stealing is safe.
    collected[{mask, std::move(dim_values)}] = std::move(cell);
  };
  scaffold.Run(translation, load, merge, emit);

  // Lay out results per (node, measure).
  std::vector<AggregateResult> out;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<AttrId> dims;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) dims.push_back(spec.dims[i]);
    }
    for (const auto& m : spec.measures) {
      AggregateResult result;
      result.key.cfs_id = cfs_id;
      result.key.dims = dims;
      result.key.measure = m;
      auto lo = collected.lower_bound({mask, {}});
      for (auto it = lo; it != collected.end() && it->first.first == mask; ++it) {
        const ValueCell& cell = it->second;
        double value = 0;
        if (m.is_count_star()) {
          value = cell.count_star;
        } else {
          ValueAcc acc;
          if (!cell.accs.empty()) acc = cell.accs[attr_slot(m.attr)];
          if (acc.count == 0) continue;
          switch (m.func) {
            case sparql::AggFunc::kCount:
              value = acc.count;
              break;
            case sparql::AggFunc::kSum:
              value = acc.sum;
              break;
            case sparql::AggFunc::kAvg:
              value = acc.sum / acc.count;
              break;
            case sparql::AggFunc::kMin:
              value = acc.min;
              break;
            case sparql::AggFunc::kMax:
              value = acc.max;
              break;
          }
        }
        result.groups.push_back(GroupResult{it->first.second, value});
      }
      SortGroups(&result);
      out.push_back(std::move(result));
    }
  }
  return out;
}

}  // namespace spade
