#include "src/core/earlystop.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "src/util/timer.h"

namespace spade {

ScoreEstimate EstimateScore(InterestingnessKind kind,
                            const std::vector<std::vector<double>>& group_values,
                            const std::vector<double>& group_scale, double alpha,
                            size_t r_limit) {
  ScoreEstimate est;
  size_t g = group_values.size();
  est.num_groups = g;
  if (g < 2) {
    // One group (or none): every interestingness function is 0.
    return est;
  }
  std::vector<double> y(g, 0.0);
  std::vector<double> var_y(g, 0.0);
  for (size_t i = 0; i < g; ++i) {
    const std::vector<double>& vals = group_values[i];
    size_t take = std::min(r_limit, vals.size());
    double r = static_cast<double>(take);
    double mean = 0;
    for (size_t j = 0; j < take; ++j) mean += vals[j];
    if (r > 0) mean /= r;
    double s2 = 0;
    for (size_t j = 0; j < take; ++j) {
      s2 += (vals[j] - mean) * (vals[j] - mean);
    }
    if (r > 1) s2 /= (r - 1);
    double scale = group_scale[i];
    y[i] = scale * mean;
    // Var(scale * mean(X)) = scale^2 * sigma^2 / r.
    var_y[i] = (r > 0) ? scale * scale * s2 / r : 0.0;
  }
  double h = Interestingness(kind, y);
  std::vector<double> grad = InterestingnessGradient(kind, y);
  double tau2 = 0;
  for (size_t i = 0; i < g; ++i) tau2 += var_y[i] * grad[i] * grad[i];
  double z = NormalQuantile(1.0 - alpha / 2.0);
  double eps = z * std::sqrt(std::max(0.0, tau2));
  est.score = h;
  est.lower = std::max(0.0, h - eps);
  est.upper = h + eps;
  return est;
}

void EarlyStopPlanner::AddLattice(const LatticeSpec& spec,
                                  const std::vector<DimensionEncoding>& encodings,
                                  const CubeLayout& layout,
                                  const Translation& translation,
                                  MeasureCache* measures) {
  size_t n = spec.dims.size();
  size_t num_nodes = size_t{1} << n;
  const size_t sample_cap = 2 * options_.sample_size + 8;

  // Section 5.3: the sampled facts are propagated from the MMST's root down
  // the tree — each node's group table is built from a parent's, not from
  // the raw root cells. Group structure stays exact (est_count sums the
  // root-exact counts); samples are bounded unions of the parents' samples.
  // Null-coordinate groups are carried along (descendants need their facts)
  // but never become estimation candidates. The root itself never gets a
  // table: MVDCube materializes its cells for propagation regardless, so
  // pruning its MDAs could not pay for estimating the largest group table.
  size_t base = group_tables_.size();
  group_tables_.resize(base + num_nodes);
  const uint32_t root_mask = static_cast<uint32_t>(num_nodes - 1);

  // Masks by descending popcount (root excluded).
  std::vector<uint32_t> masks;
  for (uint32_t mask = 0; mask < num_nodes; ++mask) {
    if (mask != root_mask) masks.push_back(mask);
  }
  std::sort(masks.begin(), masks.end(), [](uint32_t a, uint32_t b) {
    int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
    if (pa != pb) return pa > pb;
    return a < b;
  });

  std::vector<int32_t> coords(n);
  for (uint32_t mask : masks) {
    std::vector<Group>& table = group_tables_[base + mask];
    std::unordered_map<uint64_t, size_t> index;

    auto absorb = [&](const std::vector<int32_t>& src_coords, double count,
                      const std::vector<FactId>& sample) {
      uint64_t key = 0;
      for (size_t d = 0; d < n; ++d) {
        if (!(mask & (1u << d))) continue;
        key = key * static_cast<uint64_t>(encodings[d].domain_size()) +
              static_cast<uint64_t>(src_coords[d]);
      }
      auto [it, inserted] = index.try_emplace(key, table.size());
      if (inserted) {
        Group grp;
        grp.coords.assign(n, 0);
        for (size_t d = 0; d < n; ++d) {
          if (mask & (1u << d)) {
            grp.coords[d] = src_coords[d];
            grp.has_null |= src_coords[d] >= encodings[d].null_code();
          }
        }
        table.push_back(std::move(grp));
      }
      Group& dst = table[it->second];
      dst.est_count += count;
      if (dst.sample.size() < sample_cap && !sample.empty()) {
        dst.sample.insert(dst.sample.end(), sample.begin(), sample.end());
      }
    };

    if (static_cast<size_t>(__builtin_popcount(mask)) + 1 == n || n == 1) {
      // Direct child of the root: project the raw translation.
      static const std::vector<FactId> kNoSample;
      for (const auto& [cell, count] : translation.root_group_count) {
        uint64_t c = cell;
        for (size_t i = n; i-- > 0;) {
          coords[i] = static_cast<int32_t>(
              c % static_cast<uint64_t>(layout.extent[i]));
          c /= static_cast<uint64_t>(layout.extent[i]);
        }
        auto rit = translation.reservoirs.find(cell);
        absorb(coords, count,
               rit != translation.reservoirs.end() ? rit->second : kNoSample);
      }
    } else {
      // Deeper node: project the smallest already-built parent table.
      uint32_t best_parent = 0;
      size_t best_size = static_cast<size_t>(-1);
      for (size_t d = 0; d < n; ++d) {
        if (mask & (1u << d)) continue;
        uint32_t parent = mask | (1u << d);
        if (parent == root_mask) continue;
        size_t size = group_tables_[base + parent].size();
        if (size < best_size) {
          best_size = size;
          best_parent = parent;
        }
      }
      for (const Group& src : group_tables_[base + best_parent]) {
        absorb(src.coords, src.est_count, src.sample);
      }
    }

    // Deduplicate samples (a multi-valued fact reaches the same group via
    // several source groups) and cap at the sample size.
    for (Group& grp : table) {
      std::sort(grp.sample.begin(), grp.sample.end());
      grp.sample.erase(std::unique(grp.sample.begin(), grp.sample.end()),
                       grp.sample.end());
      if (grp.sample.size() > options_.sample_size) {
        grp.sample.resize(options_.sample_size);
      }
    }
  }

  // One candidate per (node, measure); the root's MDAs are always evaluated.
  for (uint32_t mask = 0; mask < num_nodes; ++mask) {
    if (mask == root_mask && n > 0) continue;
    // Sampling only pays when groups are larger than the sample: estimating
    // a node whose average group is below the sample size costs as much as
    // evaluating it (every fact is in the "sample"), so such nodes go
    // straight to MVDCube.
    {
      const std::vector<Group>& table = group_tables_[base + mask];
      double total = 0;
      size_t live_groups = 0;
      for (const Group& grp : table) {
        if (grp.has_null) continue;
        total += grp.est_count;
        ++live_groups;
      }
      if (live_groups == 0 ||
          total / static_cast<double>(live_groups) <
              static_cast<double>(options_.sample_size)) {
        continue;
      }
    }
    std::vector<AttrId> dims;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) dims.push_back(spec.dims[i]);
    }
    for (const auto& m : spec.measures) {
      Candidate cand;
      cand.key.cfs_id = cfs_id_;
      cand.key.dims = dims;
      cand.key.measure = m;
      cand.measure = m;
      cand.group_table = base + mask;
      if (!m.is_count_star()) {
        cand.mv = &measures->Get(*db_, *cfs_, m.attr);
        if (m.attr < offline_->size()) {
          cand.attr_min = (*offline_)[m.attr].min_value;
          cand.attr_max = (*offline_)[m.attr].max_value;
        }
      }
      candidates_.push_back(std::move(cand));
    }
  }
}

EarlyStopResult EarlyStopPlanner::Plan(const Arm& arm) {
  EarlyStopResult result;
  Timer timer;
  result.num_candidates = candidates_.size();
  if (candidates_.empty()) return result;

  using sparql::AggFunc;

  // Extract the per-group sample values of every candidate once; batches
  // then estimate from growing prefixes of these arrays. The reservoirs hold
  // facts in arbitrary (random) order, so a prefix is itself a simple random
  // sample.
  for (Candidate& cand : candidates_) {
    const std::vector<Group>& groups = group_tables_[cand.group_table];
    cand.values.reserve(groups.size());
    cand.scales.reserve(groups.size());
    for (const Group& grp : groups) {
      if (grp.has_null) continue;  // propagation-only group
      if (cand.measure.is_count_star()) {
        // count(*): the estimate is the (root-exact) group size itself;
        // zero sampling variance (Appendix B degenerate case).
        cand.values.push_back({1.0});
        cand.scales.push_back(grp.est_count);
        continue;
      }
      std::vector<double> vals;
      vals.reserve(std::min(grp.sample.size(), options_.sample_size));
      for (FactId f : grp.sample) {
        if (cand.mv->count[f] == 0) continue;  // fact lacks the measure
        switch (cand.measure.func) {
          case AggFunc::kCount:
            vals.push_back(static_cast<double>(cand.mv->count[f]));
            break;
          case AggFunc::kSum:
            vals.push_back(cand.mv->sum[f]);
            break;
          case AggFunc::kAvg:
            vals.push_back(cand.mv->sum[f] /
                           static_cast<double>(cand.mv->count[f]));
            break;
          case AggFunc::kMin:
            vals.push_back(cand.mv->min[f]);
            break;
          case AggFunc::kMax:
            vals.push_back(cand.mv->max[f]);
            break;
        }
      }
      if (vals.empty()) continue;  // estimated: group lacks the measure
      double scale = 1.0;
      if (cand.measure.func == AggFunc::kSum ||
          cand.measure.func == AggFunc::kCount) {
        // Appendix B: scale the sample mean by the estimated group size.
        scale = grp.est_count;
      }
      cand.values.push_back(std::move(vals));
      cand.scales.push_back(scale);
    }
  }

  for (size_t batch = 1; batch <= options_.num_batches; ++batch) {
    size_t r_b =
        std::max<size_t>(1, options_.sample_size * batch / options_.num_batches);

    // Refresh estimates of the surviving candidates.
    for (Candidate& cand : candidates_) {
      if (!cand.alive) continue;
      bool minmax = !cand.measure.is_count_star() &&
                    (cand.measure.func == AggFunc::kMin ||
                     cand.measure.func == AggFunc::kMax);
      if (cand.measure.is_count_star() && batch > 1) {
        continue;  // root-exact: the estimate cannot change across batches
      }

      std::vector<double> minmax_estimates;
      if (minmax) {
        minmax_estimates.reserve(cand.values.size());
        for (const std::vector<double>& full : cand.values) {
          size_t take = std::min(r_b, full.size());
          if (take == 0) continue;
          double m = full[0];
          for (size_t i = 0; i < take; ++i) {
            m = (cand.measure.func == AggFunc::kMin) ? std::min(m, full[i])
                                                     : std::max(m, full[i]);
          }
          minmax_estimates.push_back(m);
        }
      }

      if (minmax) {
        // Appendix C: point estimate from sample extrema; variance bounded by
        // Popoviciu's inequality over the attribute's global range (upper)
        // and Szőkefalvi-Nagy's inequality over the estimated extrema
        // (lower). Only defined for h = variance; other h never prune.
        cand.estimate.num_groups = minmax_estimates.size();
        cand.estimate.score =
            Interestingness(options_.kind, minmax_estimates);
        if (options_.kind == InterestingnessKind::kVariance &&
            minmax_estimates.size() >= 2) {
          double range = cand.attr_max - cand.attr_min;
          double est_min = *std::min_element(minmax_estimates.begin(),
                                             minmax_estimates.end());
          double est_max = *std::max_element(minmax_estimates.begin(),
                                             minmax_estimates.end());
          double g = static_cast<double>(minmax_estimates.size());
          cand.estimate.upper = 0.25 * range * range;
          cand.estimate.lower =
              (est_max - est_min) * (est_max - est_min) / (2.0 * g);
        } else {
          cand.estimate.lower = 0;
          cand.estimate.upper = std::numeric_limits<double>::infinity();
        }
      } else {
        cand.estimate =
            EstimateScore(options_.kind, cand.values, cand.scales,
                          options_.alpha, r_b);
      }
    }

    // Threshold: the k-th best lower bound among surviving candidates and
    // already-evaluated aggregates (their exact score is its own bound).
    std::vector<double> lower_bounds;
    for (const Candidate& cand : candidates_) {
      if (cand.alive) lower_bounds.push_back(cand.estimate.lower);
    }
    for (size_t h = 0; h < arm.num_aggregates(); ++h) {
      if (arm.moments(h).count() >= 2) {
        lower_bounds.push_back(arm.Score(h, options_.kind));
      }
    }
    if (lower_bounds.size() <= options_.top_k) break;  // nothing to prune
    std::nth_element(lower_bounds.begin(),
                     lower_bounds.begin() + static_cast<long>(options_.top_k - 1),
                     lower_bounds.end(), std::greater<double>());
    double threshold = lower_bounds[options_.top_k - 1];

    size_t pruned_this_batch = 0;
    for (Candidate& cand : candidates_) {
      if (!cand.alive) continue;
      if (cand.estimate.upper < threshold) {
        cand.alive = false;
        result.pruned.insert(cand.key);
        ++pruned_this_batch;
      }
    }
    // "Terminates once the sample is exhausted or no aggregates have been
    // pruned in a given number of batches."
    if (pruned_this_batch == 0) break;
  }

  result.time_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace spade
