#include "src/core/export.h"

#include <cstdio>

#include "src/core/present.h"
#include "src/util/string_util.h"

namespace spade {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string CsvEscape(const std::string& s) {
  bool needs_quotes = s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

namespace {

std::string JsonNumber(double v) {
  // JSON has no NaN/Inf; clamp to null-like zero (cannot occur in practice:
  // scores and aggregates are finite by construction).
  if (!(v == v) || v > 1.7e308 || v < -1.7e308) return "0";
  return FormatDouble(v, 9);
}

}  // namespace

void ExportInsightsJson(const AttributeStore& db, const std::vector<Insight>& insights,
                        InterestingnessKind kind, std::ostream& os) {
  os << "{\n  \"interestingness\": \"" << InterestingnessName(kind)
     << "\",\n  \"insights\": [";
  for (size_t i = 0; i < insights.size(); ++i) {
    const Insight& insight = insights[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"rank\": " << (i + 1) << ",\n";
    os << "      \"score\": " << JsonNumber(insight.ranked.score) << ",\n";
    os << "      \"cfs\": \"" << JsonEscape(insight.cfs_name) << "\",\n";
    os << "      \"description\": \"" << JsonEscape(insight.description)
       << "\",\n";
    os << "      \"visualization\": \""
       << VisualizationKindName(RecommendVisualization(insight.ranked.key))
       << "\",\n";
    os << "      \"dimensions\": [";
    for (size_t d = 0; d < insight.ranked.key.dims.size(); ++d) {
      os << (d == 0 ? "" : ", ") << "\""
         << JsonEscape(db.attribute(insight.ranked.key.dims[d]).name) << "\"";
    }
    os << "],\n";
    if (insight.ranked.key.measure.is_count_star()) {
      os << "      \"measure\": \"count(*)\",\n";
    } else {
      os << "      \"measure\": \""
         << sparql::AggFuncName(insight.ranked.key.measure.func) << "("
         << JsonEscape(db.attribute(insight.ranked.key.measure.attr).name)
         << ")\",\n";
    }
    os << "      \"num_groups\": " << insight.ranked.num_groups << ",\n";
    os << "      \"sparql\": \"" << JsonEscape(insight.sparql) << "\",\n";
    os << "      \"groups\": [";
    for (size_t g = 0; g < insight.ranked.groups.size(); ++g) {
      const GroupResult& group = insight.ranked.groups[g];
      os << (g == 0 ? "\n" : ",\n") << "        {\"key\": [";
      for (size_t d = 0; d < group.dim_values.size(); ++d) {
        os << (d == 0 ? "" : ", ") << "\""
           << JsonEscape(ValueLabel(db, group.dim_values[d])) << "\"";
      }
      os << "], \"value\": " << JsonNumber(group.value) << "}";
    }
    if (!insight.ranked.groups.empty()) os << "\n      ";
    os << "]\n    }";
  }
  if (!insights.empty()) os << "\n  ";
  os << "]\n}\n";
}

void ExportInsightsCsv(const AttributeStore& db, const std::vector<Insight>& insights,
                       std::ostream& os) {
  os << "rank,score,cfs,description,group,value\n";
  for (size_t i = 0; i < insights.size(); ++i) {
    const Insight& insight = insights[i];
    for (const GroupResult& group : insight.ranked.groups) {
      std::string key;
      for (size_t d = 0; d < group.dim_values.size(); ++d) {
        if (d > 0) key += " / ";
        key += ValueLabel(db, group.dim_values[d]);
      }
      os << (i + 1) << "," << FormatDouble(insight.ranked.score, 6) << ","
         << CsvEscape(insight.cfs_name) << ","
         << CsvEscape(insight.description) << "," << CsvEscape(key) << ","
         << FormatDouble(group.value, 6) << "\n";
    }
  }
}

}  // namespace spade
