#ifndef SPADE_CORE_PGCUBE_H_
#define SPADE_CORE_PGCUBE_H_

#include <vector>

#include "src/core/aggregate.h"
#include "src/core/arm.h"
#include "src/core/lattice.h"

namespace spade {

/// PGCube variants (Section 6): how fact counts are computed.
enum class PgCubeVariant : uint8_t {
  kStar,      ///< COUNT(*) over the joined rows (PGCube*)
  kDistinct,  ///< COUNT(DISTINCT fact) — fixes fact counting (PGCube_d)
};

struct PgCubeStats {
  size_t num_joined_rows = 0;  ///< |facts x dim-value combinations|
  size_t num_mdas_evaluated = 0;
  size_t num_groups_emitted = 0;
  double join_ms = 0;
  double aggregate_ms = 0;
};

/// \brief PGCube: PostgreSQL's one-pass GROUP BY CUBE, reproduced per the
/// substitution note in DESIGN.md.
///
/// Each lattice is evaluated as one "query": the facts are joined with every
/// dimension's value table (multi-valued dimensions multiply rows, missing
/// values become nulls — exactly Figure 4's table A1) and with the measure
/// tables; the joined row stream is then aggregated into all 2^N grouping
/// sets in a single pass over the input (the PostgreSQL >= 9.5 strategy [26],
/// which hashes each row into every grouping set).
///
/// The error model of Section 4.2 follows from the join multiplication:
/// * PGCube*: count(*) counts joined rows, so a fact with multiple values on
///   a projected-away dimension is counted once per value;
/// * PGCube_d: count(*) is replaced by count(distinct fact), correcting pure
///   fact counts, but count(M)/sum(M)/avg(M) still accumulate the fact's
///   measures once per joined row (count(distinct M) would be wrong in a
///   different way: Variation 1).
/// min/max are idempotent and always correct.
///
/// Unlike MVDCube, PGCube shares nothing across lattices: measures are
/// re-joined per lattice and shared nodes are recomputed ("PGCube evaluates
/// each lattice in a separate query"). When `arm` is non-null, results
/// stream into it (keys already present are recomputed but not re-added,
/// mirroring ARM-side dedup of result storage); the full per-node results
/// are also returned for error measurement.
std::vector<AggregateResult> EvaluateLatticePgCube(const AttributeStore& db,
                                                   uint32_t cfs_id,
                                                   const CfsIndex& cfs,
                                                   const LatticeSpec& spec,
                                                   PgCubeVariant variant,
                                                   Arm* arm,
                                                   PgCubeStats* stats);

}  // namespace spade

#endif  // SPADE_CORE_PGCUBE_H_
