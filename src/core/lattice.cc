#include "src/core/lattice.h"

#include <algorithm>
#include <numeric>

namespace spade {

DimensionEncoding BuildDimensionEncoding(const AttributeStore& db, const CfsIndex& cfs,
                                         AttrId attr) {
  const AttributeTable& table = db.attribute(attr);
  DimensionEncoding enc;
  enc.attr = attr;
  enc.fact_codes.resize(cfs.size());

  // Record the matched (member, subject-slice) pairs once, reused by both
  // passes below.
  std::vector<std::pair<size_t, size_t>> matches;  // (member index, subject index)
  ForEachCfsMatch(table, cfs.members(), [&](size_t mi, size_t si) {
    matches.emplace_back(mi, si);
  });

  // Pass 1: distinct values among CFS facts.
  std::vector<TermId> values;
  for (const auto& [mi, si] : matches) {
    (void)mi;
    Span<TermId> vals = table.values(si);
    values.insert(values.end(), vals.begin(), vals.end());
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  enc.values = std::move(values);

  // Pass 2: per-fact code lists (value slices are sorted and deduplicated,
  // so the code lists come out sorted and unique directly).
  for (const auto& [mi, si] : matches) {
    std::vector<int32_t>& codes = enc.fact_codes[mi];
    Span<TermId> vals = table.values(si);
    codes.reserve(vals.size());
    for (TermId o : vals) {
      auto it = std::lower_bound(enc.values.begin(), enc.values.end(), o);
      codes.push_back(static_cast<int32_t>(it - enc.values.begin()));
    }
    if (codes.size() >= 2) ++enc.num_multi_facts;
  }
  return enc;
}

uint64_t CubeLayout::EncodePartition(const std::vector<int>& chunk_coords) const {
  uint64_t p = 0;
  for (size_t k = 0; k < order.size(); ++k) {
    int d = order[k];
    p = p * static_cast<uint64_t>(num_chunks[d]) +
        static_cast<uint64_t>(chunk_coords[d]);
  }
  return p;
}

std::vector<int> CubeLayout::DecodePartition(uint64_t p) const {
  std::vector<int> cc(order.size(), 0);
  DecodePartitionInto(p, &cc);
  return cc;
}

void CubeLayout::DecodePartitionInto(uint64_t p, std::vector<int>* chunk_coords) const {
  chunk_coords->resize(order.size());
  for (size_t k = order.size(); k-- > 0;) {
    int d = order[k];
    (*chunk_coords)[d] = static_cast<int>(p % static_cast<uint64_t>(num_chunks[d]));
    p /= static_cast<uint64_t>(num_chunks[d]);
  }
}

uint64_t CubeLayout::PackCell(const std::vector<int32_t>& coords) const {
  uint64_t cell = 0;
  for (size_t i = 0; i < extent.size(); ++i) {
    cell = cell * static_cast<uint64_t>(extent[i]) +
           static_cast<uint64_t>(coords[i]);
  }
  return cell;
}

std::vector<int32_t> CubeLayout::UnpackCell(uint64_t cell) const {
  std::vector<int32_t> coords(extent.size());
  for (size_t i = extent.size(); i-- > 0;) {
    coords[i] = static_cast<int32_t>(cell % static_cast<uint64_t>(extent[i]));
    cell /= static_cast<uint64_t>(extent[i]);
  }
  return coords;
}

namespace {

/// Memory cells of node `mask` under dimension order `pos` (pos[d] =
/// position, 0 slowest): a dim needs its full extent iff a missing dim with
/// more than one chunk varies slower than it; otherwise one chunk suffices.
uint64_t NodeMemory(uint32_t mask, const std::vector<int>& pos,
                    const std::vector<int>& extent, const std::vector<int>& chunk,
                    const std::vector<int>& num_chunks, uint32_t* full_mask_out) {
  size_t n = extent.size();
  uint64_t cells = 1;
  uint32_t full_mask = 0;
  for (size_t d = 0; d < n; ++d) {
    if (!(mask & (1u << d))) continue;
    bool full = false;
    for (size_t j = 0; j < n; ++j) {
      if (mask & (1u << j)) continue;  // j present: not a missing dim
      if (num_chunks[j] <= 1) continue;
      if (pos[j] < pos[d]) {
        full = true;
        break;
      }
    }
    if (full) full_mask |= (1u << d);
    cells *= static_cast<uint64_t>(full ? extent[d] : chunk[d]);
  }
  if (full_mask_out != nullptr) *full_mask_out = full_mask;
  return cells;
}

}  // namespace

Mmst Mmst::Build(const std::vector<int>& extents, int target_chunk) {
  Mmst mmst;
  size_t n = extents.size();
  CubeLayout& layout = mmst.layout_;
  layout.extent = extents;
  layout.chunk.resize(n);
  layout.num_chunks.resize(n);
  for (size_t d = 0; d < n; ++d) {
    layout.chunk[d] = std::max(1, std::min(target_chunk, extents[d]));
    layout.num_chunks[d] =
        (extents[d] + layout.chunk[d] - 1) / layout.chunk[d];
  }

  // Exact search over dimension orders (N <= 4 in the pipeline; guard larger
  // N by falling back to the descending-extent heuristic order).
  std::vector<int> best_order(n);
  std::iota(best_order.begin(), best_order.end(), 0);
  if (n <= 6) {
    std::vector<int> perm(best_order);
    std::sort(perm.begin(), perm.end());
    uint64_t best_total = ~0ULL;
    do {
      std::vector<int> pos(n);
      for (size_t k = 0; k < n; ++k) pos[perm[k]] = static_cast<int>(k);
      uint64_t total = 0;
      for (uint32_t mask = 0; mask < (1u << n); ++mask) {
        total += NodeMemory(mask, pos, layout.extent, layout.chunk,
                            layout.num_chunks, nullptr);
      }
      if (total < best_total) {
        best_total = total;
        best_order = perm;
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
  } else {
    std::sort(best_order.begin(), best_order.end(),
              [&](int a, int b) { return extents[a] > extents[b]; });
  }
  layout.order = best_order;
  layout.pos.resize(n);
  for (size_t k = 0; k < n; ++k) layout.pos[layout.order[k]] = static_cast<int>(k);
  layout.num_partitions = 1;
  for (size_t d = 0; d < n; ++d) {
    layout.num_partitions *= static_cast<uint64_t>(layout.num_chunks[d]);
  }

  // Materialize the 2^N nodes.
  mmst.nodes_.resize(1u << n);
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    MmstNode& node = mmst.nodes_[mask];
    node.mask = mask;
    for (size_t d = 0; d < n; ++d) {
      if (mask & (1u << d)) node.dims.push_back(static_cast<int>(d));
    }
    node.memory_cells = NodeMemory(mask, layout.pos, layout.extent, layout.chunk,
                                   layout.num_chunks, &node.full_mask);
    node.local_extent.resize(node.dims.size());
    node.stride.resize(node.dims.size());
    for (size_t k = 0; k < node.dims.size(); ++k) {
      int d = node.dims[k];
      node.local_extent[k] =
          (node.full_mask & (1u << d)) ? layout.extent[d] : layout.chunk[d];
    }
    uint64_t stride = 1;
    for (size_t k = node.dims.size(); k-- > 0;) {
      node.stride[k] = stride;
      stride *= static_cast<uint64_t>(node.local_extent[k]);
    }
  }

  // Parent choice: among the |missing dims| candidate parents, pick the one
  // whose in-memory array is smallest — propagation scans the parent array.
  uint32_t root_mask = (n == 0) ? 0 : ((1u << n) - 1);
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (mask == root_mask) continue;
    MmstNode& node = mmst.nodes_[mask];
    uint64_t best_mem = ~0ULL;
    for (size_t d = 0; d < n; ++d) {
      if (mask & (1u << d)) continue;
      uint32_t parent_mask = mask | (1u << d);
      uint64_t mem = mmst.nodes_[parent_mask].memory_cells;
      if (mem < best_mem) {
        best_mem = mem;
        node.parent = static_cast<int>(parent_mask);
        node.dropped_dim = static_cast<int>(d);
      }
    }
    mmst.nodes_[node.parent].children.push_back(static_cast<int>(mask));
  }

  // Cache the derived views consumed per scaffold invocation: the topological
  // order (parents first — more mask bits first) and the summed memory cells.
  mmst.topo_order_.resize(mmst.nodes_.size());
  std::iota(mmst.topo_order_.begin(), mmst.topo_order_.end(), 0);
  std::sort(mmst.topo_order_.begin(), mmst.topo_order_.end(),
            [&mmst](int a, int b) {
              int pa = __builtin_popcount(mmst.nodes_[a].mask);
              int pb = __builtin_popcount(mmst.nodes_[b].mask);
              if (pa != pb) return pa > pb;
              return a < b;
            });
  mmst.total_memory_cells_ = 0;
  for (const auto& node : mmst.nodes_) {
    mmst.total_memory_cells_ += node.memory_cells;
  }
  return mmst;
}

Translation TranslateData(const std::vector<DimensionEncoding>& dims,
                          const CubeLayout& layout,
                          const TranslationOptions& options) {
  Translation out;
  size_t n = dims.size();
  out.partitions.resize(layout.num_partitions);
  size_t num_facts = n == 0 ? 0 : dims[0].fact_codes.size();
  FactId begin = options.fact_begin;
  FactId end = static_cast<FactId>(
      std::min<size_t>(options.fact_end, num_facts));

  std::vector<const std::vector<int32_t>*> lists(n);
  std::vector<size_t> odo(n);
  std::vector<int32_t> coords(n);
  std::vector<int> chunk_coords(n);
  // A fact missing dimension d maps to the constant one-element list
  // {null_code(d)} — build those lists once, not per fact.
  std::vector<std::vector<int32_t>> null_lists(n);
  for (size_t d = 0; d < n; ++d) null_lists[d] = {dims[d].null_code()};

  for (FactId fact = begin; fact < end; ++fact) {
    bool any_value = false;
    size_t combos = 1;
    for (size_t d = 0; d < n; ++d) {
      const std::vector<int32_t>& codes = dims[d].fact_codes[fact];
      if (codes.empty()) {
        lists[d] = &null_lists[d];
      } else {
        lists[d] = &codes;
        any_value = true;
      }
      combos *= lists[d]->size();
    }
    if (!any_value) continue;  // Section 4.3: facts need >= 1 dimension value
    ++out.num_facts_translated;
    if (combos > options.max_combos_per_fact) {
      out.num_dropped_combos += combos;
      continue;
    }

    // Odometer over the cross-product of value code lists.
    std::fill(odo.begin(), odo.end(), 0);
    while (true) {
      for (size_t d = 0; d < n; ++d) {
        coords[d] = (*lists[d])[odo[d]];
        chunk_coords[d] = coords[d] / layout.chunk[d];
      }
      uint64_t cell = layout.PackCell(coords);
      uint64_t p = layout.EncodePartition(chunk_coords);
      out.partitions[p].emplace_back(cell, fact);

      uint32_t& count = out.root_group_count[cell];
      ++count;
      if (options.sample_capacity > 0) {
        // Reservoir sampling (Vitter's algorithm R) per root group.
        std::vector<FactId>& reservoir = out.reservoirs[cell];
        if (reservoir.size() < options.sample_capacity) {
          reservoir.push_back(fact);
        } else {
          uint64_t j = options.rng->Uniform(count);
          if (j < options.sample_capacity) reservoir[j] = fact;
        }
      }

      // Advance odometer.
      size_t d = n;
      while (d-- > 0) {
        if (++odo[d] < lists[d]->size()) break;
        odo[d] = 0;
        if (d == 0) goto fact_done;
      }
      if (n == 0) break;
    }
  fact_done:;
  }
  return out;
}

Translation MergeShardTranslations(std::vector<Translation> shards) {
  if (shards.empty()) return Translation();
  Translation out = std::move(shards[0]);
  for (size_t s = 1; s < shards.size(); ++s) {
    Translation& shard = shards[s];
    if (shard.partitions.size() > out.partitions.size()) {
      out.partitions.resize(shard.partitions.size());
    }
    for (size_t p = 0; p < shard.partitions.size(); ++p) {
      auto& dst = out.partitions[p];
      auto& src = shard.partitions[p];
      if (dst.empty()) {
        dst = std::move(src);
      } else {
        dst.insert(dst.end(), src.begin(), src.end());
      }
    }
    for (const auto& [cell, count] : shard.root_group_count) {
      out.root_group_count[cell] += count;
    }
    out.num_facts_translated += shard.num_facts_translated;
    out.num_dropped_combos += shard.num_dropped_combos;
  }
  return out;
}

std::vector<PartitionSlice> MakePartitionSlices(const Translation& data,
                                                uint64_t num_partitions,
                                                size_t num_slices) {
  std::vector<PartitionSlice> out;
  if (num_partitions == 0) {
    out.push_back(PartitionSlice{0, 0});
    return out;
  }
  uint64_t slices = std::min<uint64_t>(std::max<size_t>(1, num_slices),
                                       num_partitions);
  uint64_t total_pairs = 0;
  for (const auto& p : data.partitions) total_pairs += p.size();
  uint64_t target = std::max<uint64_t>(1, (total_pairs + slices - 1) / slices);

  uint64_t begin = 0;
  uint64_t acc = 0;
  for (uint64_t p = 0; p < num_partitions; ++p) {
    if (p < data.partitions.size()) acc += data.partitions[p].size();
    bool last_slice = out.size() + 1 == slices;
    if (!last_slice && acc >= target && p + 1 < num_partitions) {
      out.push_back(PartitionSlice{begin, p + 1});
      begin = p + 1;
      acc = 0;
    }
  }
  out.push_back(PartitionSlice{begin, num_partitions});
  return out;
}

}  // namespace spade
