#include "src/core/spade.h"

#include <algorithm>

#include "src/persist/snapshot.h"
#include "src/util/timer.h"

namespace spade {

namespace {

/// Element-wise add of per-shard fact counts into a report's vector,
/// growing it to the longer length. The one definition both merge sites
/// (per-CFS EvalStats -> partial report, partial -> total) share.
void MergeShardCounts(const std::vector<size_t>& src, std::vector<size_t>* dst) {
  if (dst->size() < src.size()) dst->resize(src.size());
  for (size_t s = 0; s < src.size(); ++s) (*dst)[s] += src[s];
}

}  // namespace

Spade::Spade(Graph* graph, SpadeOptions options)
    : graph_(graph), options_(std::move(options)) {
  arm_ = std::make_unique<Arm>(options_.max_stored_groups);
}

Spade::~Spade() = default;

Status Spade::RunOffline() {
  if (!options_.load_store.empty()) return LoadStore(options_.load_store);
  SPADE_RETURN_NOT_OK(BuildOfflineSequential());
  return MaybeSaveStore();
}

Status Spade::BuildOfflineSequential() {
  Timer offline_timer;
  Timer timer;
  if (options_.saturate) {
    Saturate(graph_);
    report_.timings.saturation_ms = timer.ElapsedMillis();
    timer.Restart();
  }
  report_.num_triples = graph_->NumTriples();

  summary_ = StructuralSummary::Build(*graph_);
  summary_dirty_ = false;
  report_.timings.summary_ms = timer.ElapsedMillis();
  timer.Restart();

  db_ = std::make_unique<AttributeStore>(graph_);
  db_->BuildDirectAttributes();
  report_.num_direct_properties = db_->num_attributes();
  report_.timings.attribute_tables_ms = timer.ElapsedMillis();
  timer.Restart();

  offline_stats_.clear();
  for (AttrId a = 0; a < db_->num_attributes(); ++a) {
    offline_stats_.push_back(ComputeAttrStats(*db_, a));
  }
  report_.timings.offline_stats_ms = timer.ElapsedMillis();
  timer.Restart();

  if (options_.enable_derivations) {
    report_.derivations = DeriveAll(db_.get(), offline_stats_, options_.derivation);
    // Analyze the derived attributes as well: the pipeline needs their kinds
    // and bounds (enumeration, early-stop min/max CIs).
    for (AttrId a = static_cast<AttrId>(offline_stats_.size());
         a < db_->num_attributes(); ++a) {
      offline_stats_.push_back(ComputeAttrStats(*db_, a));
    }
  }
  report_.timings.derivation_ms = timer.ElapsedMillis();
  report_.timings.offline_wall_ms = offline_timer.ElapsedMillis();

  offline_done_ = true;
  return Status::OK();
}

Status Spade::RunOffline(TripleChunkSource* source) {
  if (!options_.load_store.empty()) return LoadStore(options_.load_store);
  // RDFS saturation rewrites the graph before any attribute table can be
  // built, so it cannot overlap parsing; drain the source and run the
  // sequential oracle. Same fallback when streaming is switched off — one
  // entry point serves both modes, which is what bench_ingest compares.
  if (!options_.ingest.enabled || options_.saturate) {
    Timer drain_timer;
    SPADE_RETURN_NOT_OK(DrainChunkSource(source, graph_));
    const double drain_ms = drain_timer.ElapsedMillis();
    Status status = RunOffline();
    // The offline phase owns the parse in source-driven mode, so the drain
    // counts toward its wall-clock — bench_ingest compares sequential and
    // streamed runs on equal footing. num_chunks stays 0: the marker that
    // no streaming ran.
    report_.timings.offline_wall_ms += drain_ms;
    report_.ingest.parse_ms = drain_ms;
    return status;
  }
  Timer offline_timer;
  size_t num_threads = options_.num_threads == 0
                           ? ThreadPool::HardwareConcurrency()
                           : options_.num_threads;
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads - 1);
  TaskScheduler scheduler(pool.get());

  // Parse / scatter / merge-seal / statistics, with the structural summary
  // handed in as the post-parse task so it builds concurrently with the
  // store. See ARCHITECTURE.md "The ingest pipeline" for the stage protocol
  // and the determinism argument.
  db_ = std::make_unique<AttributeStore>(graph_);
  double summary_ms = 0;
  IngestOptions ingest_options = options_.ingest;
  if (ingest_options.cancel == nullptr) ingest_options.cancel = options_.cancel;
  SPADE_RETURN_NOT_OK(RunStreamingIngest(
      source, graph_, db_.get(), &offline_stats_, &scheduler, ingest_options,
      [this, &summary_ms] {
        Timer t;
        summary_ = StructuralSummary::Build(*graph_);
        summary_dirty_ = false;
        summary_ms = t.ElapsedMillis();
      },
      &report_.ingest));
  report_.num_triples = graph_->NumTriples();
  report_.num_direct_properties = db_->num_attributes();
  // Per-step fields carry *work* time under the overlapped build (the
  // online phase's convention, see SpadeTimings); offline_wall_ms is the
  // end-to-end number.
  report_.timings.summary_ms = summary_ms;
  report_.timings.attribute_tables_ms =
      report_.ingest.scatter_work_ms + report_.ingest.build_work_ms;
  report_.timings.offline_stats_ms = report_.ingest.stats_work_ms;

  Timer timer;
  if (options_.enable_derivations) {
    report_.derivations = DeriveAll(db_.get(), offline_stats_, options_.derivation);
    // Analyze the derived attributes as well (the pipeline needs their kinds
    // and bounds) — fanned out per attribute; values are identical to the
    // sequential loop's.
    ComputeAttrStatsRange(*db_, static_cast<AttrId>(offline_stats_.size()),
                          &scheduler, &offline_stats_);
  }
  report_.timings.derivation_ms = timer.ElapsedMillis();
  report_.timings.offline_wall_ms = offline_timer.ElapsedMillis();

  offline_done_ = true;
  return MaybeSaveStore();
}

Status Spade::LoadStore(const std::string& path) {
  Timer timer;
  auto reader = std::make_unique<persist::SnapshotReader>();
  persist::SnapshotReader::Options ropts;
  ropts.verify_checksums = options_.verify_snapshot;
  SPADE_RETURN_NOT_OK(reader->Open(path, ropts));
  persist::LoadedMeta meta;
  std::vector<CandidateFactSet> loaded_sets;
  SPADE_RETURN_NOT_OK(reader->Load(graph_, &db_, &summary_, &offline_stats_,
                                   &loaded_sets, &meta));
  summary_dirty_ = false;
  snapshot_ = std::move(reader);  // keep the mapping alive for the attachments
  report_.num_triples = static_cast<size_t>(meta.num_triples);
  report_.num_direct_properties =
      static_cast<size_t>(meta.num_direct_properties);
  report_.derivations = meta.derivations;
  // The persisted CFS selection is only valid under the options it was
  // selected with; on any mismatch it is recomputed from the (borrowed)
  // graph and summary on first use.
  if (meta.has_fact_sets &&
      persist::SameCfsOptions(meta.cfs_options, options_.cfs)) {
    fact_sets_ = std::move(loaded_sets);
    report_.num_cfs = fact_sets_.size();
    fact_sets_ready_ = true;
  }
  report_.timings.offline_wall_ms = timer.ElapsedMillis();
  offline_done_ = true;
  return Status::OK();
}

Status Spade::SaveStore(const std::string& path) const {
  if (!offline_done_) {
    return Status::Internal("RunOffline() must complete before SaveStore()");
  }
  persist::SaveMeta meta;
  meta.num_direct_properties = report_.num_direct_properties;
  meta.derivations = report_.derivations;
  meta.cfs_options = options_.cfs;
  const std::vector<CandidateFactSet>* sets =
      fact_sets_ready_ ? &fact_sets_ : nullptr;
  EnsureSummary();  // snapshots persist the summary; refresh a deferred one
  return persist::SaveSnapshot(*db_, summary_, offline_stats_, sets, meta,
                               path);
}

Status Spade::MaybeSaveStore() {
  if (options_.save_store.empty()) return Status::OK();
  // Select fact sets first so the snapshot carries them: a loader with the
  // same CfsOptions then skips selection entirely.
  SPADE_RETURN_NOT_OK(PrepareFactSets());
  return SaveStore(options_.save_store);
}

void Spade::EnsureSummary() const {
  if (!summary_dirty_) return;
  summary_ = StructuralSummary::Build(*graph_);
  summary_dirty_ = false;
}

Status Spade::PrepareFactSets() {
  if (!offline_done_) {
    return Status::Internal("RunOffline() must complete before fact-set selection");
  }
  if (fact_sets_ready_) return Status::OK();
  Timer timer;
  // Only summary-based selection reads the summary; type/property-based
  // selection after a delta must not pay for the rebuild.
  if (options_.cfs.summary_based) EnsureSummary();
  fact_sets_ = SelectCandidateFactSets(*graph_, &summary_, options_.cfs);
  report_.num_cfs = fact_sets_.size();
  report_.timings.cfs_selection_ms = timer.ElapsedMillis();
  fact_sets_ready_ = true;
  return Status::OK();
}

Spade::CfsRunState Spade::RunOnlineCfs(uint32_t cfs_id, size_t num_shards,
                                       const SpadeOptions& opts,
                                       const CancelCheck* cancel, Arm* arm,
                                       TaskScheduler* scheduler,
                                       SpadeReport* report) const {
  if (cancel != nullptr && cancel->SkipNewWork()) return CfsRunState::kSkipped;
  CfsIndex index(fact_sets_[cfs_id].members);

  // Step 2: Online Attribute Analysis.
  Timer step;
  CfsAnalysis analysis =
      AnalyzeAttributes(*db_, index, offline_stats_, opts.enumeration);
  report->timings.attribute_analysis_ms += step.ElapsedMillis();
  step.Restart();

  // Step 3: Aggregate Enumeration.
  std::vector<LatticeSpec> lattices = EnumerateLattices(
      *db_, index, analysis, offline_stats_, opts.enumeration);
  report->num_lattices += lattices.size();
  report->num_candidate_aggregates += CountCandidateAggregates(cfs_id, lattices);
  report->timings.enumeration_ms += step.ElapsedMillis();
  step.Restart();

  // Step 4: Aggregate Evaluation, behind the uniform evaluator interface.
  CubeEvalOptions eval_options;
  eval_options.algorithm = opts.algorithm;
  eval_options.mvd = opts.mvd;
  eval_options.earlystop = opts.earlystop;
  eval_options.enable_earlystop = opts.enable_earlystop;
  eval_options.interestingness = opts.interestingness;
  eval_options.top_k = opts.top_k;
  eval_options.seed = opts.seed;
  eval_options.num_shards = num_shards;
  if (opts.max_bitmap_bytes > 0) {
    eval_options.mvd.max_bitmap_bytes = opts.max_bitmap_bytes;
  }
  std::unique_ptr<CubeEvaluator> evaluator = MakeCubeEvaluator(eval_options);

  CubeEvalInputs inputs;
  inputs.db = db_.get();
  inputs.cfs_id = cfs_id;
  inputs.cfs = &index;
  inputs.lattices = &lattices;
  inputs.offline_stats = &offline_stats_;
  inputs.cancel = cancel;

  EvalStats stats = evaluator->EvaluateCfs(inputs, arm, scheduler);
  report->num_evaluated_aggregates += stats.num_mdas_evaluated;
  report->num_reused_aggregates += stats.num_mdas_reused;
  report->num_pruned_aggregates += stats.num_mdas_pruned;
  report->num_groups_emitted += stats.num_groups_emitted;
  report->num_groups_skipped += stats.num_groups_skipped;
  report->timings.earlystop_ms += stats.earlystop_ms;
  report->timings.evaluation_ms += step.ElapsedMillis();
  report->shard_merge_ms += stats.shard_merge_ms;
  MergeShardCounts(stats.shard_fact_counts, &report->shard_fact_counts);
  report->lattice_workers_used =
      std::max(report->lattice_workers_used, stats.lattice_workers_used);
  report->lattice_wall_ms += stats.lattice_wall_ms;
  report->lattice_work_ms += stats.lattice_work_ms;
  report->lattice_peak_partial_cells = std::max(
      report->lattice_peak_partial_cells, stats.lattice_peak_partial_cells);
  report->peak_bitmap_bytes =
      std::max(report->peak_bitmap_bytes, stats.peak_bitmap_bytes);
  if (stats.aborted) return CfsRunState::kAborted;
  if (stats.budget_truncated) return CfsRunState::kTruncated;
  return CfsRunState::kCompleted;
}

namespace {

/// Fold one CFS's online deltas into the pipeline report. Counts are exact;
/// timing fields accumulate per-worker *work* time (wall-clock is tracked
/// separately as online_wall_ms).
void MergeCfsReport(const SpadeReport& cfs, SpadeReport* total) {
  total->num_lattices += cfs.num_lattices;
  total->num_candidate_aggregates += cfs.num_candidate_aggregates;
  total->num_evaluated_aggregates += cfs.num_evaluated_aggregates;
  total->num_reused_aggregates += cfs.num_reused_aggregates;
  total->num_pruned_aggregates += cfs.num_pruned_aggregates;
  total->num_groups_emitted += cfs.num_groups_emitted;
  total->num_groups_skipped += cfs.num_groups_skipped;
  total->shard_merge_ms += cfs.shard_merge_ms;
  MergeShardCounts(cfs.shard_fact_counts, &total->shard_fact_counts);
  total->lattice_workers_used =
      std::max(total->lattice_workers_used, cfs.lattice_workers_used);
  total->lattice_wall_ms += cfs.lattice_wall_ms;
  total->lattice_work_ms += cfs.lattice_work_ms;
  total->lattice_peak_partial_cells =
      std::max(total->lattice_peak_partial_cells, cfs.lattice_peak_partial_cells);
  total->peak_bitmap_bytes =
      std::max(total->peak_bitmap_bytes, cfs.peak_bitmap_bytes);
  total->timings.attribute_analysis_ms += cfs.timings.attribute_analysis_ms;
  total->timings.enumeration_ms += cfs.timings.enumeration_ms;
  total->timings.earlystop_ms += cfs.timings.earlystop_ms;
  total->timings.evaluation_ms += cfs.timings.evaluation_ms;
}

}  // namespace

Result<Spade::CfsBatchOutcome> Spade::EvaluateCfsBatch(
    const std::vector<uint32_t>& ids, size_t num_shards,
    const SpadeOptions& opts, const CancelCheck& cancel,
    TaskScheduler* scheduler, Arm* arm, SpadeReport* report) const {
  // Every CFS evaluates into its own shard; the commit rule below decides
  // what the caller keeps. A cancelled run's fan-out leaves a mix of
  // completed / truncated / aborted / skipped shards whose composition is
  // timing-dependent — but the committed result is not, because absorption
  // walks ids in order and stops at the first shard that is not a clean
  // kCompleted (absorbing a budget-truncated shard's deterministic prefix
  // first). Everything past the cut is discarded, so races only ever cost
  // wasted work, never nondeterminism.
  std::vector<Arm> shards(ids.size(), Arm(opts.max_stored_groups));
  std::vector<SpadeReport> partials(ids.size());
  std::vector<CfsRunState> states(ids.size(), CfsRunState::kSkipped);
  try {
    scheduler->ParallelFor(
        ids.size(),
        [&](size_t i) {
          states[i] = RunOnlineCfs(ids[i], num_shards, opts, &cancel,
                                   &shards[i], scheduler, &partials[i]);
        },
        &cancel);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("online evaluation failed: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("online evaluation failed: unknown exception");
  }

  CfsBatchOutcome out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (states[i] == CfsRunState::kCompleted ||
        states[i] == CfsRunState::kTruncated) {
      MergeCfsReport(partials[i], report);
      arm->Absorb(std::move(shards[i]));
      if (states[i] == CfsRunState::kCompleted) {
        ++out.num_completed;
        continue;
      }
      out.truncated = true;
      out.reason = CancelReason::kBudget;
      return out;
    }
    // kAborted / kSkipped: cut here. The shard (if any) is timing-dependent
    // partial output — discard it and everything after.
    out.truncated = true;
    out.reason = cancel.reason() != CancelReason::kNone ? cancel.reason()
                                                        : CancelReason::kCancelled;
    return out;
  }
  return out;
}

Result<Spade::CfsBatchOutcome> Spade::EvaluateAllCfsCached(
    size_t num_shards, const CancelCheck& cancel, TaskScheduler* scheduler) {
  const uint32_t num_cfs = static_cast<uint32_t>(fact_sets_.size());
  const bool use_cache = options_.enable_incremental;
  // Partition the selection: a CFS with a valid cache entry (same name,
  // same member list — ApplyDelta already dropped anything whose attributes
  // changed) absorbs its retained shard; everything else evaluates fresh.
  std::vector<uint32_t> fresh;
  std::vector<const CfsCacheEntry*> cached(num_cfs, nullptr);
  fresh.reserve(num_cfs);
  for (uint32_t id = 0; id < num_cfs; ++id) {
    if (use_cache) {
      auto it = online_cache_.find(fact_sets_[id].name);
      if (it != online_cache_.end() &&
          it->second.members == fact_sets_[id].members) {
        cached[id] = &it->second;
        continue;
      }
    }
    fresh.push_back(id);
  }

  std::vector<Arm> shards(fresh.size(), Arm(options_.max_stored_groups));
  std::vector<SpadeReport> partials(fresh.size());
  std::vector<CfsRunState> states(fresh.size(), CfsRunState::kSkipped);
  try {
    scheduler->ParallelFor(
        fresh.size(),
        [&](size_t i) {
          states[i] = RunOnlineCfs(fresh[i], num_shards, options_, &cancel,
                                   &shards[i], scheduler, &partials[i]);
        },
        &cancel);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("online evaluation failed: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("online evaluation failed: unknown exception");
  }

  // Commit walk over ALL cfs_ids in ascending order — cached and fresh
  // shards interleave exactly where the serial run would have produced
  // them, so the absorbed entry order (and therefore every downstream
  // ranking tie-break) is bit-identical to a full re-evaluation.
  CfsBatchOutcome out;
  size_t fi = 0;
  for (uint32_t id = 0; id < num_cfs; ++id) {
    if (cached[id] != nullptr) {
      // A retained shard is a complete deterministic group stream for this
      // CFS: it commits exactly like a fresh kCompleted shard.
      MergeCfsReport(cached[id]->partial, &report_);
      Arm copy = cached[id]->shard;
      arm_->Absorb(std::move(copy));
      ++report_.num_cfs_reused;
      ++out.num_completed;
      continue;
    }
    const size_t i = fi++;
    if (states[i] == CfsRunState::kCompleted ||
        states[i] == CfsRunState::kTruncated) {
      MergeCfsReport(partials[i], &report_);
      if (use_cache && states[i] == CfsRunState::kCompleted) {
        // Cache the pre-absorb shard (a copy: Absorb consumes) so a later
        // run can replay it without re-evaluating.
        CfsCacheEntry entry;
        entry.members = fact_sets_[id].members;
        entry.shard = shards[i];
        entry.partial = partials[i];
        online_cache_[fact_sets_[id].name] = std::move(entry);
      }
      arm_->Absorb(std::move(shards[i]));
      if (states[i] == CfsRunState::kCompleted) {
        ++out.num_completed;
        continue;
      }
      out.truncated = true;
      out.reason = CancelReason::kBudget;
      return out;
    }
    // kAborted / kSkipped: cut here (same canonical-prefix rule as
    // EvaluateCfsBatch); a timing-dependent partial shard is never cached.
    out.truncated = true;
    out.reason = cancel.reason() != CancelReason::kNone ? cancel.reason()
                                                        : CancelReason::kCancelled;
    return out;
  }
  return out;
}

Result<std::vector<Insight>> Spade::RunOnline() {
  if (!offline_done_) {
    return Status::Internal("RunOffline() must complete before RunOnline()");
  }
  Timer online_timer;
  Timer timer;

  // Step 1: Candidate Fact Set Selection (a no-op when a loaded snapshot
  // already restored the selection — that time is in cfs_selection_ms).
  SPADE_RETURN_NOT_OK(PrepareFactSets());
  timer.Restart();

  // Steps 2-4 per CFS. Every CFS evaluates into its own ARM shard
  // (AggregateKey embeds the cfs_id, so shards never share keys); shards are
  // absorbed in cfs_id order, which makes the result independent of the
  // thread count — bit-identical insights and counts at any num_threads.
  size_t num_threads = options_.num_threads == 0
                           ? ThreadPool::HardwareConcurrency()
                           : options_.num_threads;
  report_.num_threads_used = num_threads;
  report_.simd_kernel = simd::FoldKernelKindName(
      simd::ResolveFoldKernel(options_.mvd.simd).kind);
  // Within-CFS sharding: auto means one shard per worker, so a lone large
  // CFS can still occupy the whole pool. Results are bit-identical at every
  // shard count, so the resolution only affects wall-clock. Ineligible
  // configurations resolve to 1 (same rule the factory dispatches on), so
  // the report never claims sharding that did not run.
  size_t num_shards = ResolveShardCount(options_.algorithm,
                                        options_.enable_earlystop,
                                        options_.num_shards, num_threads);
  report_.num_shards_used = num_shards;

  // One code path for both modes: a null pool makes the scheduler run every
  // CFS inline in order. Outer parallelism is across CFSs; within a CFS, the
  // evaluator fans the per-lattice pre-builds out on the same scheduler
  // (nested ParallelFor). The calling thread participates in every
  // ParallelFor, so the pool carries num_threads - 1 workers.
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads - 1);
  TaskScheduler scheduler(pool.get());

  // Deadline / cancellation plumbing: an external token (options_.cancel)
  // lets a caller abort mid-run; deadline_ms bounds the wall-clock. Both
  // funnel into one CancelCheck — a local token backs the deadline latch
  // when no external one is supplied.
  CancelToken local_token;
  CancelToken* token = options_.cancel != nullptr ? options_.cancel
                                                  : &local_token;
  Deadline deadline = options_.deadline_ms > 0
                          ? Deadline::After(options_.deadline_ms)
                          : Deadline::Never();
  CancelCheck cancel(token, deadline);

  auto batch = EvaluateAllCfsCached(num_shards, cancel, &scheduler);
  SPADE_RETURN_NOT_OK(batch.status());
  report_.truncated = batch->truncated;
  report_.cancel_reason = batch->reason;
  report_.num_cfs_completed = batch->num_completed;
  // Early-stop time is inside evaluation wall-clock; report it separately.
  report_.timings.evaluation_ms -= report_.timings.earlystop_ms;
  timer.Restart();

  // Step 5: Top-k Computation.
  std::vector<Insight> insights =
      BuildInsights(arm_->TopK(options_.top_k, options_.interestingness));
  report_.timings.topk_ms = timer.ElapsedMillis();
  report_.timings.online_wall_ms = online_timer.ElapsedMillis();
  return insights;
}

std::vector<Insight> Spade::BuildInsights(std::vector<Arm::Ranked> ranked) const {
  std::vector<Insight> insights;
  insights.reserve(ranked.size());
  for (auto& r : ranked) {
    Insight insight;
    insight.cfs_name = fact_sets_[r.key.cfs_id].name;
    insight.description =
        DescribeAggregate(*db_, fact_sets_[r.key.cfs_id], r.key);
    insight.sparql = MdaToSparql(r.key);
    insight.ranked = std::move(r);
    insights.push_back(std::move(insight));
  }
  return insights;
}

Result<ExploreOutcome> Spade::Explore(const ExploreRequest& request,
                                      TaskScheduler* scheduler) const {
  if (!offline_done_ || !fact_sets_ready_) {
    return Status::Internal(
        "RunOffline() and PrepareFactSets() must complete before Explore()");
  }
  // Resolve the CFS subset.
  std::vector<uint32_t> ids;
  if (request.cfs_names.empty()) {
    ids.resize(fact_sets_.size());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<uint32_t>(i);
  } else {
    for (const std::string& name : request.cfs_names) {
      bool found = false;
      for (size_t i = 0; i < fact_sets_.size(); ++i) {
        if (fact_sets_[i].name == name) {
          ids.push_back(static_cast<uint32_t>(i));
          found = true;
          break;
        }
      }
      if (!found) return Status::NotFound("unknown fact set: " + name);
    }
  }

  // Per-request knobs over the pipeline defaults.
  SpadeOptions opts = options_;
  if (request.top_k) opts.top_k = *request.top_k;
  if (request.interestingness) opts.interestingness = *request.interestingness;
  if (request.algorithm) opts.algorithm = *request.algorithm;
  if (request.earlystop) opts.enable_earlystop = *request.earlystop;
  if (request.max_dims) opts.enumeration.max_dims = *request.max_dims;
  if (request.min_support_ratio) {
    opts.enumeration.min_support_ratio = *request.min_support_ratio;
  }

  TaskScheduler serial(nullptr);
  TaskScheduler* sched = scheduler != nullptr ? scheduler : &serial;
  const size_t num_shards =
      ResolveShardCount(opts.algorithm, opts.enable_earlystop, opts.num_shards,
                        sched->num_threads());

  // Per-request deadline: an explicit request value (even 0, meaning
  // "already expired") overrides the pipeline default.
  CancelToken local_token;
  CancelToken* token = request.cancel != nullptr ? request.cancel : &local_token;
  Deadline deadline = Deadline::Never();
  if (request.deadline_ms.has_value()) {
    deadline = Deadline::After(*request.deadline_ms);
  } else if (opts.deadline_ms > 0) {
    deadline = Deadline::After(opts.deadline_ms);
  }
  CancelCheck cancel(token, deadline);

  // Same shard-and-absorb discipline as RunOnline(), on request-local state:
  // results are bit-identical at every thread/shard count and concurrent
  // requests never share a mutable byte.
  Arm arm(opts.max_stored_groups);
  SpadeReport batch_report;
  auto batch = EvaluateCfsBatch(ids, num_shards, opts, cancel, sched, &arm,
                                &batch_report);
  SPADE_RETURN_NOT_OK(batch.status());

  ExploreOutcome outcome;
  outcome.num_cfs_explored = ids.size();
  outcome.truncated = batch->truncated;
  outcome.cancel_reason = batch->reason;
  outcome.num_cfs_completed = batch->num_completed;
  outcome.insights = BuildInsights(arm.TopK(opts.top_k, opts.interestingness));
  return outcome;
}

std::string Spade::MdaToSparql(const AggregateKey& key) const {
  const CandidateFactSet& cfs = fact_sets_[key.cfs_id];
  std::string head = "SELECT";
  std::string body;
  std::string comments;

  // CFS membership pattern.
  if (cfs.origin == CandidateFactSet::Origin::kType &&
      cfs.type != kInvalidTerm) {
    body += "  ?cf a <" + graph_->dict().Get(cfs.type).lexical + "> .\n";
  } else {
    comments += "# facts: " + cfs.name + " (" +
                (cfs.origin == CandidateFactSet::Origin::kSummary
                     ? "structural-summary equivalence class"
                     : "property-based selection") +
                ")\n";
  }

  auto attr_pattern = [&](AttrId attr, const std::string& var) -> std::string {
    const AttributeTable& table = db_->attribute(attr);
    switch (table.origin) {
      case AttrOrigin::kDirect:
        return "  ?cf <" + graph_->dict().Get(table.property).lexical + "> " +
               var + " .\n";
      case AttrOrigin::kPath: {
        // Recover the two hops from the derived-from chain: the table name
        // is "p/q"; derived_from points at p.
        const AttributeTable& first = db_->attribute(table.derived_from);
        std::string second = table.name.substr(first.name.size() + 1);
        auto second_id = db_->FindAttribute(second);
        std::string p1 = "<" + graph_->dict().Get(first.property).lexical + ">";
        std::string p2 =
            second_id.has_value() &&
                    db_->attribute(*second_id).property != kInvalidTerm
                ? "<" + graph_->dict().Get(db_->attribute(*second_id).property)
                            .lexical +
                      ">"
                : second;
        return "  ?cf " + p1 + "/" + p2 + " " + var + " .\n";
      }
      case AttrOrigin::kCount:
      case AttrOrigin::kKeyword:
      case AttrOrigin::kLanguage:
        comments += "# " + var + " = " + table.name +
                    " (derived property; materialized by Spade)\n";
        return "  ?cf <spade:derived/" + table.name + "> " + var + " .\n";
    }
    return "";
  };

  std::string group_by;
  for (size_t i = 0; i < key.dims.size(); ++i) {
    std::string var = "?d" + std::to_string(i + 1);
    head += " " + var;
    group_by += (i == 0 ? "" : " ") + var;
    body += attr_pattern(key.dims[i], var);
  }
  if (key.measure.is_count_star()) {
    head += " (COUNT(*) AS ?v)";
  } else {
    head += " (" + std::string(sparql::AggFuncName(key.measure.func)) +
            "(?m) AS ?v)";
    body += attr_pattern(key.measure.attr, "?m");
  }

  std::string query = comments + head + "\nWHERE {\n" + body + "}";
  if (!key.dims.empty()) query += "\nGROUP BY " + group_by;
  return query;
}

}  // namespace spade
