#include "src/core/spade.h"

#include <algorithm>

#include "src/util/timer.h"

namespace spade {

const char* EvalAlgorithmName(EvalAlgorithm algo) {
  switch (algo) {
    case EvalAlgorithm::kMvdCube:
      return "MVDCube";
    case EvalAlgorithm::kPgCubeStar:
      return "PGCube*";
    case EvalAlgorithm::kPgCubeDistinct:
      return "PGCube_d";
  }
  return "?";
}

Spade::Spade(Graph* graph, SpadeOptions options)
    : graph_(graph), options_(std::move(options)) {
  arm_ = std::make_unique<Arm>(options_.max_stored_groups);
}

Status Spade::RunOffline() {
  Timer timer;
  if (options_.saturate) {
    Saturate(graph_);
    report_.timings.saturation_ms = timer.ElapsedMillis();
    timer.Restart();
  }
  report_.num_triples = graph_->NumTriples();

  summary_ = StructuralSummary::Build(*graph_);
  report_.timings.summary_ms = timer.ElapsedMillis();
  timer.Restart();

  db_ = std::make_unique<Database>(graph_);
  db_->BuildDirectAttributes();
  report_.num_direct_properties = db_->num_attributes();
  report_.timings.attribute_tables_ms = timer.ElapsedMillis();
  timer.Restart();

  offline_stats_.clear();
  for (AttrId a = 0; a < db_->num_attributes(); ++a) {
    offline_stats_.push_back(ComputeAttrStats(*db_, a));
  }
  report_.timings.offline_stats_ms = timer.ElapsedMillis();
  timer.Restart();

  if (options_.enable_derivations) {
    report_.derivations = DeriveAll(db_.get(), offline_stats_, options_.derivation);
    // Analyze the derived attributes as well: the pipeline needs their kinds
    // and bounds (enumeration, early-stop min/max CIs).
    for (AttrId a = static_cast<AttrId>(offline_stats_.size());
         a < db_->num_attributes(); ++a) {
      offline_stats_.push_back(ComputeAttrStats(*db_, a));
    }
  }
  report_.timings.derivation_ms = timer.ElapsedMillis();

  offline_done_ = true;
  return Status::OK();
}

void Spade::EvaluateCfs(uint32_t cfs_id, const CfsIndex& index,
                        const std::vector<LatticeSpec>& lattices) {
  if (options_.algorithm == EvalAlgorithm::kPgCubeStar ||
      options_.algorithm == EvalAlgorithm::kPgCubeDistinct) {
    PgCubeVariant variant = options_.algorithm == EvalAlgorithm::kPgCubeStar
                                ? PgCubeVariant::kStar
                                : PgCubeVariant::kDistinct;
    for (const auto& spec : lattices) {
      PgCubeStats stats;
      EvaluateLatticePgCube(*db_, cfs_id, index, spec, variant, arm_.get(),
                            &stats);
      report_.num_evaluated_aggregates += stats.num_mdas_evaluated;
    }
    return;
  }

  // MVDCube path, optionally with early-stop.
  MeasureCache measures;
  std::set<AggregateKey> pruned;
  std::vector<std::vector<DimensionEncoding>> encodings(lattices.size());
  std::vector<Mmst> mmsts(lattices.size());
  std::vector<Translation> translations(lattices.size());
  bool pre_built = false;

  if (options_.enable_earlystop) {
    Timer es_timer;
    Rng rng(options_.seed ^ (0x9e3779b97f4a7c15ULL * (cfs_id + 1)));
    EarlyStopOptions es_options = options_.earlystop;
    es_options.kind = options_.interestingness;
    es_options.top_k = std::max(es_options.top_k, options_.top_k);
    EarlyStopPlanner planner(db_.get(), cfs_id, &index, &offline_stats_,
                             es_options);
    for (size_t li = 0; li < lattices.size(); ++li) {
      mmsts[li] = BuildMmstForSpec(*db_, index, lattices[li], &encodings[li],
                                   options_.mvd.partition_chunk);
      TranslationOptions topt;
      topt.max_combos_per_fact = options_.mvd.max_combos_per_fact;
      topt.sample_capacity = es_options.sample_size;
      topt.rng = &rng;
      translations[li] =
          TranslateData(encodings[li], mmsts[li].layout(), topt);
      planner.AddLattice(lattices[li], encodings[li], mmsts[li].layout(),
                         translations[li], &measures);
    }
    EarlyStopResult es = planner.Plan(*arm_);
    pruned = std::move(es.pruned);
    pre_built = true;
    // Unique pruned MDA keys (a shared node would otherwise be counted once
    // per lattice below).
    report_.num_pruned_aggregates += pruned.size();
    report_.timings.earlystop_ms += es_timer.ElapsedMillis();
  }

  for (size_t li = 0; li < lattices.size(); ++li) {
    MvdCubeStats stats = EvaluateLatticeMvd(
        *db_, cfs_id, index, lattices[li], options_.mvd, arm_.get(), &measures,
        pruned.empty() ? nullptr : &pruned,
        pre_built ? &translations[li] : nullptr,
        pre_built ? &mmsts[li] : nullptr,
        pre_built ? &encodings[li] : nullptr);
    report_.num_evaluated_aggregates += stats.num_mdas_evaluated;
    report_.num_reused_aggregates += stats.num_mdas_reused;
  }
}

Result<std::vector<Insight>> Spade::RunOnline() {
  if (!offline_done_) {
    return Status::Internal("RunOffline() must complete before RunOnline()");
  }
  Timer timer;

  // Step 1: Candidate Fact Set Selection.
  fact_sets_ = SelectCandidateFactSets(*graph_, &summary_, options_.cfs);
  report_.num_cfs = fact_sets_.size();
  report_.timings.cfs_selection_ms = timer.ElapsedMillis();
  timer.Restart();

  // Steps 2-4 per CFS.
  for (uint32_t cfs_id = 0; cfs_id < fact_sets_.size(); ++cfs_id) {
    CfsIndex index(fact_sets_[cfs_id].members);

    // Step 2: Online Attribute Analysis.
    Timer step;
    CfsAnalysis analysis =
        AnalyzeAttributes(*db_, index, offline_stats_, options_.enumeration);
    report_.timings.attribute_analysis_ms += step.ElapsedMillis();
    step.Restart();

    // Step 3: Aggregate Enumeration.
    std::vector<LatticeSpec> lattices = EnumerateLattices(
        *db_, index, analysis, offline_stats_, options_.enumeration);
    report_.num_lattices += lattices.size();
    report_.num_candidate_aggregates +=
        CountCandidateAggregates(cfs_id, lattices);
    report_.timings.enumeration_ms += step.ElapsedMillis();
    step.Restart();

    // Step 4: Aggregate Evaluation.
    EvaluateCfs(cfs_id, index, lattices);
    report_.timings.evaluation_ms += step.ElapsedMillis();
  }
  // Early-stop time is inside evaluation wall-clock; report it separately.
  report_.timings.evaluation_ms -= report_.timings.earlystop_ms;
  timer.Restart();

  // Step 5: Top-k Computation.
  std::vector<Arm::Ranked> ranked =
      arm_->TopK(options_.top_k, options_.interestingness);
  std::vector<Insight> insights;
  insights.reserve(ranked.size());
  for (auto& r : ranked) {
    Insight insight;
    insight.cfs_name = fact_sets_[r.key.cfs_id].name;
    insight.description =
        DescribeAggregate(*db_, fact_sets_[r.key.cfs_id], r.key);
    insight.sparql = MdaToSparql(r.key);
    insight.ranked = std::move(r);
    insights.push_back(std::move(insight));
  }
  report_.timings.topk_ms = timer.ElapsedMillis();
  return insights;
}

std::string Spade::MdaToSparql(const AggregateKey& key) const {
  const CandidateFactSet& cfs = fact_sets_[key.cfs_id];
  std::string head = "SELECT";
  std::string body;
  std::string comments;

  // CFS membership pattern.
  if (cfs.origin == CandidateFactSet::Origin::kType &&
      cfs.type != kInvalidTerm) {
    body += "  ?cf a <" + graph_->dict().Get(cfs.type).lexical + "> .\n";
  } else {
    comments += "# facts: " + cfs.name + " (" +
                (cfs.origin == CandidateFactSet::Origin::kSummary
                     ? "structural-summary equivalence class"
                     : "property-based selection") +
                ")\n";
  }

  auto attr_pattern = [&](AttrId attr, const std::string& var) -> std::string {
    const AttributeTable& table = db_->attribute(attr);
    switch (table.origin) {
      case AttrOrigin::kDirect:
        return "  ?cf <" + graph_->dict().Get(table.property).lexical + "> " +
               var + " .\n";
      case AttrOrigin::kPath: {
        // Recover the two hops from the derived-from chain: the table name
        // is "p/q"; derived_from points at p.
        const AttributeTable& first = db_->attribute(table.derived_from);
        std::string second = table.name.substr(first.name.size() + 1);
        auto second_id = db_->FindAttribute(second);
        std::string p1 = "<" + graph_->dict().Get(first.property).lexical + ">";
        std::string p2 =
            second_id.has_value() &&
                    db_->attribute(*second_id).property != kInvalidTerm
                ? "<" + graph_->dict().Get(db_->attribute(*second_id).property)
                            .lexical +
                      ">"
                : second;
        return "  ?cf " + p1 + "/" + p2 + " " + var + " .\n";
      }
      case AttrOrigin::kCount:
      case AttrOrigin::kKeyword:
      case AttrOrigin::kLanguage:
        comments += "# " + var + " = " + table.name +
                    " (derived property; materialized by Spade)\n";
        return "  ?cf <spade:derived/" + table.name + "> " + var + " .\n";
    }
    return "";
  };

  std::string group_by;
  for (size_t i = 0; i < key.dims.size(); ++i) {
    std::string var = "?d" + std::to_string(i + 1);
    head += " " + var;
    group_by += (i == 0 ? "" : " ") + var;
    body += attr_pattern(key.dims[i], var);
  }
  if (key.measure.is_count_star()) {
    head += " (COUNT(*) AS ?v)";
  } else {
    head += " (" + std::string(sparql::AggFuncName(key.measure.func)) +
            "(?m) AS ?v)";
    body += attr_pattern(key.measure.attr, "?m");
  }

  std::string query = comments + head + "\nWHERE {\n" + body + "}";
  if (!key.dims.empty()) query += "\nGROUP BY " + group_by;
  return query;
}

}  // namespace spade
