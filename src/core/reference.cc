#include "src/core/reference.h"

#include <algorithm>
#include <limits>
#include <map>

#include "src/core/lattice.h"

namespace spade {

namespace {

struct Acc {
  double count_star = 0;  ///< distinct facts
  double count = 0;       ///< measure values
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

double Finish(const Acc& acc, const MeasureSpec& m) {
  using sparql::AggFunc;
  if (m.is_count_star()) return acc.count_star;
  switch (m.func) {
    case AggFunc::kCount:
      return acc.count;
    case AggFunc::kSum:
      return acc.sum;
    case AggFunc::kAvg:
      return acc.count > 0 ? acc.sum / acc.count : 0;
    case AggFunc::kMin:
      return acc.count > 0 ? acc.min : 0;
    case AggFunc::kMax:
      return acc.count > 0 ? acc.max : 0;
  }
  return 0;
}

}  // namespace

void SortGroups(AggregateResult* result) {
  std::sort(result->groups.begin(), result->groups.end(),
            [](const GroupResult& a, const GroupResult& b) {
              return a.dim_values < b.dim_values;
            });
}

std::vector<AggregateResult> EvaluateReference(const AttributeStore& db,
                                               uint32_t cfs_id,
                                               const CfsIndex& cfs,
                                               const LatticeSpec& spec) {
  std::vector<AggregateResult> out;
  size_t n = spec.dims.size();
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<AttrId> dims;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) dims.push_back(spec.dims[i]);
    }
    for (const auto& measure : spec.measures) {
      out.push_back(EvaluateReferenceNode(db, cfs_id, cfs, spec, dims, measure));
    }
  }
  return out;
}

AggregateResult EvaluateReferenceNode(const AttributeStore& db, uint32_t cfs_id,
                                      const CfsIndex& cfs,
                                      const LatticeSpec& spec,
                                      const std::vector<AttrId>& dims,
                                      const MeasureSpec& measure) {
  AggregateResult result;
  result.key.cfs_id = cfs_id;
  result.key.dims = dims;
  result.key.measure = measure;

  // Per-fact dimension values, for the node's own dims (not the lattice's).
  std::vector<DimensionEncoding> encodings;
  encodings.reserve(dims.size());
  for (AttrId d : dims) encodings.push_back(BuildDimensionEncoding(db, cfs, d));
  // Lattice dims (for the `all`-node population rule).
  std::vector<DimensionEncoding> lattice_encodings;
  if (dims.empty()) {
    for (AttrId d : spec.dims) {
      lattice_encodings.push_back(BuildDimensionEncoding(db, cfs, d));
    }
  }

  MeasureVector mv;
  if (!measure.is_count_star()) {
    mv = BuildMeasureVector(db, cfs, measure.attr);
  }

  std::map<std::vector<TermId>, Acc> groups;
  std::vector<size_t> odo(dims.size());
  for (FactId fact = 0; fact < cfs.size(); ++fact) {
    // Facts must have every node dimension.
    bool has_all = true;
    for (const auto& enc : encodings) has_all &= !enc.fact_codes[fact].empty();
    if (!has_all) continue;
    if (dims.empty()) {
      bool any = false;
      for (const auto& enc : lattice_encodings) {
        any |= !enc.fact_codes[fact].empty();
      }
      if (!any) continue;
    }
    // Measure contribution of this fact (once per group).
    double f_count = 0, f_sum = 0, f_min = 0, f_max = 0;
    if (measure.is_count_star()) {
      // nothing to fetch
    } else {
      f_count = mv.count[fact];
      f_sum = mv.sum[fact];
      f_min = mv.min[fact];
      f_max = mv.max[fact];
      if (f_count == 0) {
        // A fact with dimensions but no measure values contributes nothing
        // (Example 2: n1 misses `age` and is absent from the result). This
        // matches the SPARQL semantics, where the measure triple pattern
        // would not bind.
        continue;
      }
    }

    std::fill(odo.begin(), odo.end(), 0);
    while (true) {
      std::vector<TermId> key(dims.size());
      for (size_t d = 0; d < dims.size(); ++d) {
        key[d] = encodings[d].values[encodings[d].fact_codes[fact][odo[d]]];
      }
      Acc& acc = groups[key];
      acc.count_star += 1;
      acc.count += f_count;
      acc.sum += f_sum;
      if (f_count > 0) {
        acc.min = std::min(acc.min, f_min);
        acc.max = std::max(acc.max, f_max);
      }
      // Advance odometer.
      size_t d = dims.size();
      bool done = dims.empty();
      while (d-- > 0) {
        if (++odo[d] < encodings[d].fact_codes[fact].size()) break;
        odo[d] = 0;
        if (d == 0) done = true;
      }
      if (done) break;
    }
  }

  for (const auto& [key, acc] : groups) {
    result.groups.push_back(GroupResult{key, Finish(acc, measure)});
  }
  SortGroups(&result);
  return result;
}

}  // namespace spade
