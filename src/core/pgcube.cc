#include "src/core/pgcube.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "src/store/preagg.h"
#include "src/util/timer.h"

namespace spade {

namespace {

struct PgAcc {
  double count_star = 0;
  std::unordered_set<FactId> distinct_facts;  // kDistinct variant only
  struct MeasureAcc {
    double count = 0;
    double sum = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  std::vector<MeasureAcc> measures;
};

}  // namespace

std::vector<AggregateResult> EvaluateLatticePgCube(const AttributeStore& db,
                                                   uint32_t cfs_id,
                                                   const CfsIndex& cfs,
                                                   const LatticeSpec& spec,
                                                   PgCubeVariant variant,
                                                   Arm* arm,
                                                   PgCubeStats* stats) {
  Timer timer;
  size_t n = spec.dims.size();

  // --- The "join": dimension encodings (value tables) and measures, loaded
  // afresh for this lattice (PGCube shares nothing across lattices).
  std::vector<DimensionEncoding> encodings;
  encodings.reserve(n);
  for (AttrId d : spec.dims) encodings.push_back(BuildDimensionEncoding(db, cfs, d));

  std::vector<AttrId> measure_attrs;
  for (const auto& m : spec.measures) {
    if (!m.is_count_star()) measure_attrs.push_back(m.attr);
  }
  std::sort(measure_attrs.begin(), measure_attrs.end());
  measure_attrs.erase(std::unique(measure_attrs.begin(), measure_attrs.end()),
                      measure_attrs.end());
  std::vector<MeasureVector> loaded;
  loaded.reserve(measure_attrs.size());
  for (AttrId a : measure_attrs) loaded.push_back(BuildMeasureVector(db, cfs, a));
  auto attr_slot = [&](AttrId a) {
    return static_cast<size_t>(
        std::lower_bound(measure_attrs.begin(), measure_attrs.end(), a) -
        measure_attrs.begin());
  };
  if (stats != nullptr) stats->join_ms = timer.ElapsedMillis();
  timer.Restart();

  // --- One pass: every joined row updates all 2^N grouping sets.
  // Group keys pack the projected value codes (radix = domain size + 1).
  size_t num_sets = size_t{1} << n;
  std::vector<std::unordered_map<uint64_t, PgAcc>> sets(num_sets);

  std::vector<size_t> odo(n);
  std::vector<int32_t> coords(n);
  size_t joined_rows = 0;
  for (FactId fact = 0; fact < cfs.size(); ++fact) {
    bool any_value = false;
    std::vector<const std::vector<int32_t>*> lists(n);
    std::vector<std::vector<int32_t>> null_lists(n);
    for (size_t d = 0; d < n; ++d) {
      const auto& codes = encodings[d].fact_codes[fact];
      if (codes.empty()) {
        null_lists[d] = {encodings[d].null_code()};
        lists[d] = &null_lists[d];
      } else {
        lists[d] = &codes;
        any_value = true;
      }
    }
    if (!any_value) continue;

    std::fill(odo.begin(), odo.end(), 0);
    while (true) {
      for (size_t d = 0; d < n; ++d) coords[d] = (*lists[d])[odo[d]];
      ++joined_rows;
      // Update every grouping set with this row.
      for (uint32_t mask = 0; mask < num_sets; ++mask) {
        uint64_t key = 0;
        for (size_t d = 0; d < n; ++d) {
          if (!(mask & (1u << d))) continue;
          key = key * static_cast<uint64_t>(encodings[d].domain_size()) +
                static_cast<uint64_t>(coords[d]);
        }
        PgAcc& acc = sets[mask][key];
        if (acc.measures.empty()) acc.measures.resize(measure_attrs.size());
        acc.count_star += 1;
        if (variant == PgCubeVariant::kDistinct) acc.distinct_facts.insert(fact);
        for (size_t a = 0; a < measure_attrs.size(); ++a) {
          const MeasureVector& mv = loaded[a];
          if (mv.count[fact] == 0) continue;
          PgAcc::MeasureAcc& ma = acc.measures[a];
          ma.count += mv.count[fact];
          ma.sum += mv.sum[fact];
          ma.min = std::min(ma.min, mv.min[fact]);
          ma.max = std::max(ma.max, mv.max[fact]);
        }
      }
      size_t d = n;
      bool done = (n == 0);
      while (d-- > 0) {
        if (++odo[d] < lists[d]->size()) break;
        odo[d] = 0;
        if (d == 0) done = true;
      }
      if (done) break;
    }
  }
  if (stats != nullptr) {
    stats->num_joined_rows = joined_rows;
    stats->aggregate_ms = timer.ElapsedMillis();
  }

  // --- Lay out results per (node, measure); skip null-coordinate groups.
  std::vector<AggregateResult> out;
  for (uint32_t mask = 0; mask < num_sets; ++mask) {
    std::vector<AttrId> dims;
    std::vector<size_t> dim_idx;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        dims.push_back(spec.dims[i]);
        dim_idx.push_back(i);
      }
    }
    // Decode group keys once per node.
    std::vector<std::pair<std::vector<TermId>, const PgAcc*>> groups;
    for (const auto& [key, acc] : sets[mask]) {
      uint64_t k = key;
      std::vector<int32_t> vals(dim_idx.size());
      for (size_t j = dim_idx.size(); j-- > 0;) {
        size_t d = dim_idx[j];
        vals[j] = static_cast<int32_t>(
            k % static_cast<uint64_t>(encodings[d].domain_size()));
        k /= static_cast<uint64_t>(encodings[d].domain_size());
      }
      bool has_null = false;
      std::vector<TermId> terms(dim_idx.size());
      for (size_t j = 0; j < dim_idx.size(); ++j) {
        size_t d = dim_idx[j];
        if (vals[j] >= encodings[d].null_code()) {
          has_null = true;
          break;
        }
        terms[j] = encodings[d].values[vals[j]];
      }
      if (has_null) continue;
      groups.emplace_back(std::move(terms), &acc);
    }
    std::sort(groups.begin(), groups.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    for (const auto& m : spec.measures) {
      AggregateResult result;
      result.key.cfs_id = cfs_id;
      result.key.dims = dims;
      result.key.measure = m;
      for (const auto& [terms, acc] : groups) {
        double value = 0;
        if (m.is_count_star()) {
          value = (variant == PgCubeVariant::kDistinct)
                      ? static_cast<double>(acc->distinct_facts.size())
                      : acc->count_star;
        } else {
          const PgAcc::MeasureAcc& ma = acc->measures[attr_slot(m.attr)];
          if (ma.count == 0) continue;
          switch (m.func) {
            case sparql::AggFunc::kCount:
              value = ma.count;
              break;
            case sparql::AggFunc::kSum:
              value = ma.sum;
              break;
            case sparql::AggFunc::kAvg:
              value = ma.sum / ma.count;
              break;
            case sparql::AggFunc::kMin:
              value = ma.min;
              break;
            case sparql::AggFunc::kMax:
              value = ma.max;
              break;
          }
        }
        result.groups.push_back(GroupResult{terms, value});
      }
      if (stats != nullptr) {
        ++stats->num_mdas_evaluated;
        stats->num_groups_emitted += result.groups.size();
      }
      if (arm != nullptr && !arm->IsEvaluated(result.key)) {
        Arm::Handle handle = arm->Register(result.key);
        for (const auto& g : result.groups) {
          arm->AddGroup(handle, g.dim_values, g.value);
        }
      }
      out.push_back(std::move(result));
    }
  }
  return out;
}

}  // namespace spade
