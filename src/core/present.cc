#include "src/core/present.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <set>

#include "src/util/string_util.h"

namespace spade {

const char* VisualizationKindName(VisualizationKind kind) {
  switch (kind) {
    case VisualizationKind::kHistogram:
      return "histogram";
    case VisualizationKind::kHeatMap:
      return "heat-map";
    case VisualizationKind::kTable:
      return "table";
  }
  return "?";
}

VisualizationKind RecommendVisualization(const AggregateKey& key) {
  switch (key.dims.size()) {
    case 1:
      return VisualizationKind::kHistogram;
    case 2:
      return VisualizationKind::kHeatMap;
    default:
      return VisualizationKind::kTable;
  }
}

std::string ValueLabel(const AttributeStore& db, TermId term) {
  const Term& t = db.graph().dict().Get(term);
  std::string label = t.kind == TermKind::kIri ? AttributeStore::LocalName(t.lexical)
                                               : t.lexical;
  return label.empty() ? "(empty)" : label;
}

namespace {

std::string Clip(std::string s, size_t width) {
  if (s.size() <= width) return s;
  return s.substr(0, width - 3) + "...";
}

std::string Num(double v) { return FormatDouble(v, 4); }

}  // namespace

void RenderHistogram(const AttributeStore& db, const Insight& insight,
                     const RenderOptions& options, std::ostream& os) {
  const auto& groups = insight.ranked.groups;
  if (groups.empty()) {
    os << "  (no groups)\n";
    return;
  }
  std::vector<const GroupResult*> sorted;
  for (const auto& g : groups) sorted.push_back(&g);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->value > b->value; });
  double max_abs = 0;
  for (const auto* g : sorted) max_abs = std::max(max_abs, std::fabs(g->value));
  if (max_abs <= 0) max_abs = 1;

  size_t shown = std::min(sorted.size(), options.max_rows);
  for (size_t i = 0; i < shown; ++i) {
    const GroupResult& g = *sorted[i];
    size_t bars = static_cast<size_t>(
        std::lround(static_cast<double>(options.bar_width) *
                    std::fabs(g.value) / max_abs));
    os << "  " << std::left << std::setw(static_cast<int>(options.label_width))
       << Clip(ValueLabel(db, g.dim_values[0]), options.label_width) << " |"
       << std::string(bars, '#') << " " << Num(g.value) << "\n";
  }
  if (sorted.size() > shown) {
    os << "  ... " << (sorted.size() - shown) << " more groups\n";
  }
}

void RenderHeatMap(const AttributeStore& db, const Insight& insight,
                   const RenderOptions& options, std::ostream& os) {
  const auto& groups = insight.ranked.groups;
  if (groups.empty()) {
    os << "  (no groups)\n";
    return;
  }
  // Collect row/column labels (dimension 0 = rows, 1 = columns).
  std::set<TermId> row_set, col_set;
  std::map<std::pair<TermId, TermId>, double> cells;
  double min_v = groups[0].value, max_v = groups[0].value;
  for (const auto& g : groups) {
    row_set.insert(g.dim_values[0]);
    col_set.insert(g.dim_values[1]);
    cells[{g.dim_values[0], g.dim_values[1]}] = g.value;
    min_v = std::min(min_v, g.value);
    max_v = std::max(max_v, g.value);
  }
  std::vector<TermId> rows(row_set.begin(), row_set.end());
  std::vector<TermId> cols(col_set.begin(), col_set.end());
  bool rows_clipped = rows.size() > options.max_rows;
  bool cols_clipped = cols.size() > options.max_columns;
  if (rows_clipped) rows.resize(options.max_rows);
  if (cols_clipped) cols.resize(options.max_columns);

  // Shade scale (5 levels).
  static const char* kShades[] = {" .", " -", " +", " *", " #"};
  double span = max_v - min_v;
  auto shade = [&](double v) {
    if (span <= 0) return kShades[2];
    int level = static_cast<int>(4.0 * (v - min_v) / span + 0.5);
    return kShades[std::clamp(level, 0, 4)];
  };

  size_t label_w = std::min<size_t>(options.label_width, 20);
  os << "  " << std::string(label_w, ' ');
  for (TermId c : cols) {
    os << std::right << std::setw(7) << Clip(ValueLabel(db, c), 6);
  }
  if (cols_clipped) os << " ...";
  os << "\n";
  for (TermId r : rows) {
    os << "  " << std::left << std::setw(static_cast<int>(label_w))
       << Clip(ValueLabel(db, r), label_w);
    for (TermId c : cols) {
      auto it = cells.find({r, c});
      if (it == cells.end()) {
        os << std::setw(7) << " ";
      } else {
        os << std::right << std::setw(7) << shade(it->second);
      }
    }
    os << "\n";
  }
  if (rows_clipped) os << "  ...\n";
  os << "  scale: '.' = " << Num(min_v) << "  '#' = " << Num(max_v) << "\n";
}

void RenderTable(const AttributeStore& db, const Insight& insight,
                 const RenderOptions& options, std::ostream& os) {
  const auto& groups = insight.ranked.groups;
  size_t shown = std::min(groups.size(), options.max_rows);
  for (size_t i = 0; i < shown; ++i) {
    const GroupResult& g = groups[i];
    os << "  ";
    for (size_t d = 0; d < g.dim_values.size(); ++d) {
      if (d > 0) os << " / ";
      os << Clip(ValueLabel(db, g.dim_values[d]), options.label_width);
    }
    os << " = " << Num(g.value) << "\n";
  }
  if (groups.size() > shown) {
    os << "  ... " << (groups.size() - shown) << " more rows\n";
  }
}

void RenderInsight(const AttributeStore& db, const Insight& insight,
                   const RenderOptions& options, std::ostream& os) {
  VisualizationKind kind = RecommendVisualization(insight.ranked.key);
  os << insight.description << "  [score " << Num(insight.ranked.score) << ", "
     << insight.ranked.num_groups << " groups, "
     << VisualizationKindName(kind) << "]\n";
  switch (kind) {
    case VisualizationKind::kHistogram:
      RenderHistogram(db, insight, options, os);
      break;
    case VisualizationKind::kHeatMap:
      RenderHeatMap(db, insight, options, os);
      break;
    case VisualizationKind::kTable:
      RenderTable(db, insight, options, os);
      break;
  }
}

}  // namespace spade
