#include "src/core/mfs.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>
#include <set>

namespace spade {

namespace {

using Tidset = std::vector<uint32_t>;

Tidset Intersect(const Tidset& a, const Tidset& b) {
  Tidset out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

class MfsMiner {
 public:
  MfsMiner(const std::vector<std::vector<int>>& transactions, size_t min_support,
           size_t max_items)
      : min_support_(std::max<size_t>(min_support, 1)), max_items_(max_items) {
    // Build tidsets of frequent single items.
    std::map<int, Tidset> tidsets;
    for (uint32_t tid = 0; tid < transactions.size(); ++tid) {
      for (int item : transactions[tid]) tidsets[item].push_back(tid);
    }
    for (auto& [item, tids] : tidsets) {
      std::sort(tids.begin(), tids.end());
      tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
      if (tids.size() >= min_support_) {
        items_.push_back(item);
        item_tids_.push_back(std::move(tids));
      }
    }
    // Increasing support order: small tidsets first prunes faster.
    std::vector<size_t> order(items_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
      if (item_tids_[a].size() != item_tids_[b].size()) {
        return item_tids_[a].size() < item_tids_[b].size();
      }
      return items_[a] < items_[b];
    });
    std::vector<int> items2;
    std::vector<Tidset> tids2;
    for (size_t i : order) {
      items2.push_back(items_[i]);
      tids2.push_back(std::move(item_tids_[i]));
    }
    items_ = std::move(items2);
    item_tids_ = std::move(tids2);
  }

  std::vector<std::vector<int>> Mine() {
    std::vector<int> prefix;
    std::vector<size_t> tail(items_.size());
    for (size_t i = 0; i < items_.size(); ++i) tail[i] = i;
    Tidset all;  // empty prefix: no tidset restriction
    Recurse(prefix, nullptr, tail);
    // Sort each set and the result list for deterministic output.
    for (auto& s : results_) std::sort(s.begin(), s.end());
    std::sort(results_.begin(), results_.end());
    return results_;
  }

 private:
  // prefix_tids == nullptr means "all transactions".
  void Recurse(std::vector<int>& prefix, const Tidset* prefix_tids,
               const std::vector<size_t>& tail) {
    bool extended = false;
    for (size_t ti = 0; ti < tail.size(); ++ti) {
      size_t item_idx = tail[ti];
      Tidset merged = (prefix_tids == nullptr)
                          ? item_tids_[item_idx]
                          : Intersect(*prefix_tids, item_tids_[item_idx]);
      if (merged.size() < min_support_) continue;
      extended = true;
      prefix.push_back(items_[item_idx]);
      if (prefix.size() >= max_items_) {
        // Size-capped: report if not covered by an existing result.
        Report(prefix);
      } else {
        std::vector<size_t> next_tail(tail.begin() + static_cast<long>(ti) + 1,
                                      tail.end());
        Recurse(prefix, &merged, next_tail);
      }
      prefix.pop_back();
    }
    if (!extended && !prefix.empty()) Report(prefix);
  }

  void Report(const std::vector<int>& candidate) {
    std::set<int> cand(candidate.begin(), candidate.end());
    // Maximality: drop if a superset was already reported. DFS order visits
    // supersets along one branch before backtracking, so checking both
    // directions keeps the result an antichain.
    for (const auto& r : results_) {
      if (r.size() >= cand.size() &&
          std::includes(r.begin(), r.end(), cand.begin(), cand.end())) {
        return;
      }
    }
    std::vector<int> sorted(cand.begin(), cand.end());
    // Remove any previously reported subset of the new set.
    results_.erase(
        std::remove_if(results_.begin(), results_.end(),
                       [&](const std::vector<int>& r) {
                         return r.size() <= sorted.size() &&
                                std::includes(sorted.begin(), sorted.end(),
                                              r.begin(), r.end());
                       }),
        results_.end());
    results_.push_back(std::move(sorted));
  }

  size_t min_support_;
  size_t max_items_;
  std::vector<int> items_;
  std::vector<Tidset> item_tids_;
  std::vector<std::vector<int>> results_;  // each sorted ascending
};

}  // namespace

std::vector<std::vector<int>> MineMaximalFrequentSets(
    const std::vector<std::vector<int>>& transactions, size_t min_support,
    size_t max_items) {
  if (max_items == 0) return {};
  MfsMiner miner(transactions, min_support, max_items);
  return miner.Mine();
}

std::vector<std::vector<int>> MaximalFrequentSetsBruteForce(
    const std::vector<std::vector<int>>& transactions, size_t min_support,
    size_t max_items) {
  min_support = std::max<size_t>(min_support, 1);
  // Collect distinct items.
  std::set<int> item_set;
  for (const auto& t : transactions) item_set.insert(t.begin(), t.end());
  std::vector<int> items(item_set.begin(), item_set.end());
  if (items.size() > 20) return {};  // guard: test-only helper

  // Enumerate all subsets up to max_items, keep frequent ones.
  std::vector<std::vector<int>> frequent;
  size_t n = items.size();
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<int> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset.push_back(items[i]);
    }
    if (subset.size() > max_items) continue;
    size_t support = 0;
    for (const auto& t : transactions) {
      std::set<int> tt(t.begin(), t.end());
      bool all = true;
      for (int item : subset) all &= tt.count(item) > 0;
      support += all;
    }
    if (support >= min_support) frequent.push_back(subset);
  }
  // Keep maximal ones.
  std::vector<std::vector<int>> maximal;
  for (const auto& a : frequent) {
    bool is_max = true;
    for (const auto& b : frequent) {
      if (b.size() > a.size() &&
          std::includes(b.begin(), b.end(), a.begin(), a.end())) {
        is_max = false;
        break;
      }
    }
    if (is_max) maximal.push_back(a);
  }
  std::sort(maximal.begin(), maximal.end());
  return maximal;
}

}  // namespace spade
