#ifndef SPADE_CORE_MFS_H_
#define SPADE_CORE_MFS_H_

#include <cstddef>
#include <vector>

namespace spade {

/// \brief Maximal Frequent Set mining (Section 3, step 3b; Gouda & Zaki [25]).
///
/// Transactions are the facts of a CFS, items are the candidate-dimension
/// attributes a fact carries. A set of items is frequent if at least
/// `min_support` transactions contain all of them; it is maximal if no
/// frequent superset exists. Each maximal frequent set becomes the dimension
/// set of one lattice root.
///
/// The miner is an Eclat-style depth-first search over tidsets (transaction
/// id lists, intersected as the itemset grows) with GenMax-style maximality
/// checking against the result set. Items are explored in increasing support
/// order, which keeps tidsets small early.
///
/// `max_items` bounds the itemset size explored (the paper bounds lattice
/// dimensionality at N <= 4); a set is then reported when it has no frequent
/// extension *within the bound*. Results are sorted item lists; the result
/// list is antichain (no set contains another).
std::vector<std::vector<int>> MineMaximalFrequentSets(
    const std::vector<std::vector<int>>& transactions, size_t min_support,
    size_t max_items);

/// Reference implementation by exhaustive enumeration, for tests. Exponential
/// in the number of distinct items; only usable on small inputs.
std::vector<std::vector<int>> MaximalFrequentSetsBruteForce(
    const std::vector<std::vector<int>>& transactions, size_t min_support,
    size_t max_items);

}  // namespace spade

#endif  // SPADE_CORE_MFS_H_
