#ifndef SPADE_CORE_EXPORT_H_
#define SPADE_CORE_EXPORT_H_

#include <ostream>
#include <vector>

#include "src/core/spade.h"

namespace spade {

/// \brief Machine-readable export of discovered insights.
///
/// A downstream consumer (notebook, dashboard, the paper's CLF application)
/// gets, per insight: rank, score, the MDA identity (CFS / dimensions /
/// measure / function), the recommended visualization, the SPARQL text, and
/// the stored group tuples. Dimension values are exported as their labels
/// plus the raw lexical form.
void ExportInsightsJson(const AttributeStore& db, const std::vector<Insight>& insights,
                        InterestingnessKind kind, std::ostream& os);

/// One-insight-per-line CSV (rank, score, groups, cfs, description) with the
/// group tuples flattened out — convenient for spreadsheets.
void ExportInsightsCsv(const AttributeStore& db, const std::vector<Insight>& insights,
                       std::ostream& os);

/// Escape a string for inclusion in a JSON document (exposed for tests).
std::string JsonEscape(const std::string& s);

/// Escape a CSV field per RFC 4180 (exposed for tests).
std::string CsvEscape(const std::string& s);

}  // namespace spade

#endif  // SPADE_CORE_EXPORT_H_
