#ifndef SPADE_CORE_ARM_H_
#define SPADE_CORE_ARM_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "src/core/aggregate.h"
#include "src/core/interestingness.h"

namespace spade {

/// \brief Aggregate Result Manager (Section 3, steps 4-5).
///
/// Cube algorithms stream (group, value) pairs into the ARM, which
/// (a) deduplicates MDAs shared across lattices — an aggregate registered
///     twice is evaluated once and reused ("Spade ensures that the results of
///     evaluated MDAs are reused, not recomputed");
/// (b) incrementally maintains the statistics the interestingness functions
///     need (streaming central moments, min/max), so scoring is O(1) per MDA
///     at top-k time;
/// (c) keeps up to `max_stored_groups` group tuples per MDA for presentation
///     of the winning aggregates (histograms / heat maps of Figure 6).
class Arm {
 public:
  using Handle = size_t;
  static constexpr Handle kInvalidHandle = static_cast<Handle>(-1);

  explicit Arm(size_t max_stored_groups = 512)
      : max_stored_groups_(max_stored_groups) {}

  /// True if `key` has already been registered (the caller should skip
  /// re-evaluating it).
  bool IsEvaluated(const AggregateKey& key) const;

  /// Register a new MDA for result collection. Returns kInvalidHandle if the
  /// key is already registered.
  Handle Register(const AggregateKey& key);

  /// Look up the handle of a registered key.
  Handle Find(const AggregateKey& key) const;

  /// Append one group tuple of the MDA. Each group must be added exactly
  /// once (the cube algorithms' flush discipline guarantees this).
  void AddGroup(Handle handle, std::vector<TermId> dim_values, double value);

  size_t num_aggregates() const { return entries_.size(); }

  const AggregateKey& key(Handle handle) const { return entries_[handle].key; }
  size_t num_groups(Handle handle) const { return entries_[handle].moments.count(); }
  const OnlineMoments& moments(Handle handle) const {
    return entries_[handle].moments;
  }
  const std::vector<GroupResult>& stored_groups(Handle handle) const {
    return entries_[handle].groups;
  }

  /// Interestingness score of one MDA under `kind`.
  double Score(Handle handle, InterestingnessKind kind) const {
    return entries_[handle].moments.Score(kind);
  }

  /// A scored aggregate in the final ranking.
  struct Ranked {
    AggregateKey key;
    double score = 0;
    size_t num_groups = 0;
    std::vector<GroupResult> groups;  ///< stored subset, for display
  };

  /// Step 5: score every evaluated MDA with at least `min_groups` groups and
  /// return the k best, ties broken by key for determinism.
  std::vector<Ranked> TopK(size_t k, InterestingnessKind kind,
                           size_t min_groups = 2) const;

  /// Rewrite every entry's key through `fn`, preserving entry order, and
  /// rebuild the key index. The incremental-maintenance cache uses this to
  /// retag a retained CFS shard after a delta changed the CFS's id and the
  /// store's attribute ids (the shard's data is unchanged — only the key
  /// coordinates moved). `fn` must be injective over the stored keys.
  template <typename Fn>
  void RemapKeys(Fn&& fn) {
    index_.clear();
    for (Handle h = 0; h < entries_.size(); ++h) {
      entries_[h].key = fn(entries_[h].key);
      index_.emplace(entries_[h].key, h);
    }
  }

  /// Move every entry of `shard` into this ARM, leaving `shard` empty.
  ///
  /// The parallel pipeline gives each CFS its own ARM shard (AggregateKey
  /// embeds the cfs_id, so shards of distinct CFSs never share keys) and
  /// absorbs them in cfs_id order, which reproduces the serial entry order
  /// bit for bit. A key already present here wins over the shard's copy
  /// (the shard entry is dropped) — mirroring Register's first-writer-wins
  /// reuse semantics.
  void Absorb(Arm&& shard);

 private:
  struct Entry {
    AggregateKey key;
    OnlineMoments moments;
    std::vector<GroupResult> groups;
  };

  size_t max_stored_groups_;
  std::vector<Entry> entries_;
  std::map<AggregateKey, Handle> index_;
};

}  // namespace spade

#endif  // SPADE_CORE_ARM_H_
