#ifndef SPADE_CORE_MVDCUBE_H_
#define SPADE_CORE_MVDCUBE_H_

#include <map>
#include <set>
#include <vector>

#include "src/core/arm.h"
#include "src/core/lattice.h"
#include "src/simd/measure_fold.h"
#include "src/store/preagg.h"
#include "src/util/rng.h"

namespace spade {

/// Per-CFS cache of measure vectors: MVDCube shares loaded measures across
/// every lattice of a CFS (Section 4.3, Measure Loading), one of its two
/// structural advantages over PGCube (the other being single evaluation of
/// nodes shared between lattices, enforced via the ARM).
class MeasureCache {
 public:
  const MeasureVector& Get(const AttributeStore& db, const CfsIndex& cfs, AttrId attr);
  /// Insert a pre-built vector (the sharded evaluator fills measure vectors
  /// shard-parallel in Prepare). First writer wins, like Get.
  void Put(AttrId attr, MeasureVector mv);
  size_t num_loads() const { return cache_.size(); }

 private:
  std::map<AttrId, MeasureVector> cache_;
};

/// Tuning knobs of the MVDCube evaluator.
struct MvdCubeOptions {
  /// Distinct values per dimension per partition (ArrayCube's chunk size).
  int partition_chunk = 16;
  /// Cap on cells a single fact may occupy (multi-value cross product).
  size_t max_combos_per_fact = 4096;
  /// Measure-fold kernel selection (src/simd): kAuto dispatches to the best
  /// kernel the CPU supports, kScalar forces the portable lane-strided
  /// kernel. Bit-identical results either way — this knob only exists for
  /// the differential tests, the CI dispatch-independence job, and benches.
  simd::SimdMode simd = simd::SimdMode::kAuto;
  /// Resident-bitmap budget for one CFS, in bytes; 0 = unlimited. Checked in
  /// the canonical emit against the running bitmap_bytes_peak sum (plus
  /// `budget_bytes_used` carried in from earlier lattices of the CFS): the
  /// group that would push the sum past the budget is not admitted, and no
  /// later group of the CFS is either. The cut point is a pure function of
  /// the canonical group stream, so it is identical at every
  /// thread/shard/worker count.
  uint64_t max_bitmap_bytes = 0;
};

/// Statistics of one lattice evaluation, reported by benches and tests.
struct MvdCubeStats {
  size_t num_nodes = 0;
  size_t num_mdas_evaluated = 0;  ///< MDA keys newly evaluated
  size_t num_mdas_reused = 0;     ///< keys already in the ARM (shared nodes)
  size_t num_mdas_pruned = 0;     ///< keys skipped by early-stop
  size_t num_groups_emitted = 0;
  uint64_t translation_cells = 0;
  uint64_t mmst_memory_cells = 0;
  double translate_ms = 0;
  double measure_load_ms = 0;
  double compute_ms = 0;
  /// Summed RoaringBitmap::MemoryBytes() of every emitted group cell. The
  /// canonical emit walks the merged partials, which all coexist at that
  /// point, so this is a measured lower bound on the lattice's peak
  /// resident bitmap footprint (Section 4.3 memory accounting) — cells
  /// filtered before emit (null-coordinate groups, unconsumed nodes) and
  /// not-yet-folded duplicate slice partials are resident too but not
  /// counted.
  uint64_t bitmap_bytes_peak = 0;
  /// True when the bitmap budget tripped during this lattice's emit; the
  /// groups after the cut are counted in num_groups_skipped, not emitted.
  bool budget_truncated = false;
  size_t num_groups_skipped = 0;
  /// Measure-fold kernel the dispatcher picked (scalar / avx2 / neon).
  simd::FoldKernelKind fold_kernel = simd::FoldKernelKind::kScalar;
  /// Partition-parallel lattice computation (ParallelLatticeRun).
  ParallelLatticeStats lattice;
};

/// \brief MVDCube (Section 4.3): correct one-pass lattice evaluation.
///
/// Pipeline per lattice: Data Translation lays the facts into the
/// partitioned array (cells addressed by dimension value codes, multi-valued
/// facts in several cells, missing values on the added null coordinate);
/// Measure Loading fetches the per-fact pre-aggregated measures (shared via
/// MeasureCache); Lattice Computation streams partitions through the MMST,
/// cells carrying Roaring bitmaps of fact ids. Bitmaps are ORed downward as
/// dimensions are projected away, so a fact that occupies several parent
/// cells (multi-valued dimension) is consolidated — counted once — in the
/// child cell. When a node's region completes, its cells are scanned once:
/// the bitmap is intersected against the measure arrays (both ordered by
/// fact id) and every (measure, function) MDA of the node is computed
/// simultaneously; null-coordinate groups are propagated but not reported.
///
/// `pruned` contains MDA keys early-stop decided to skip (their nodes still
/// propagate). Results stream into `arm`; keys already evaluated there are
/// reused, not recomputed.
///
/// Lattice computation runs the partition-parallel protocol
/// (ParallelLatticeRun) at every configuration: `lattice_workers` contiguous
/// partition slices evaluated concurrently on `scheduler` (one slice,
/// inline, by default), partial fact bitmaps merged by union and groups
/// emitted in canonical order. The ARM stream — order included — is
/// identical at every worker count, so `lattice_workers` and `scheduler`
/// only change wall-clock.
MvdCubeStats EvaluateLatticeMvd(const AttributeStore& db, uint32_t cfs_id,
                                const CfsIndex& cfs, const LatticeSpec& spec,
                                const MvdCubeOptions& options, Arm* arm,
                                MeasureCache* measures,
                                const std::set<AggregateKey>* pruned = nullptr,
                                const Translation* pre_translated = nullptr,
                                const Mmst* pre_built = nullptr,
                                const std::vector<DimensionEncoding>*
                                    pre_encodings = nullptr,
                                TaskScheduler* scheduler = nullptr,
                                size_t lattice_workers = 1,
                                const CancelCheck* cancel = nullptr,
                                uint64_t budget_bytes_used = 0);

/// Build the MMST for a lattice spec (exposed so early-stop and benches can
/// share one instance with the evaluation).
Mmst BuildMmstForSpec(const AttributeStore& db, const CfsIndex& cfs,
                      const LatticeSpec& spec,
                      std::vector<DimensionEncoding>* encodings,
                      int partition_chunk);

}  // namespace spade

#endif  // SPADE_CORE_MVDCUBE_H_
