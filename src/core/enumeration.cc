#include "src/core/enumeration.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "src/core/mfs.h"

namespace spade {

namespace {

// True when one of the attributes is derived from the other: such a pair may
// not appear together as dimensions, nor as dimension + measure
// (e.g. nationality and count(nationality), Section 3 step 3).
bool DerivationConflict(const AttributeStore& db, AttrId a, AttrId b) {
  return db.attribute(a).derived_from == b || db.attribute(b).derived_from == a;
}

}  // namespace

CfsAnalysis AnalyzeAttributes(const AttributeStore& db, const CfsIndex& cfs,
                              const std::vector<AttrStats>& offline,
                              const EnumerationOptions& options) {
  CfsAnalysis analysis;
  size_t n = cfs.size();
  size_t min_support =
      std::max<size_t>(1, static_cast<size_t>(options.min_support_ratio *
                                              static_cast<double>(n)));
  for (AttrId attr = 0; attr < db.num_attributes(); ++attr) {
    OnlineAttrStats online = ComputeOnlineStats(db, cfs, attr);
    if (online.support == 0) continue;
    AnalyzedAttribute a;
    a.attr = attr;
    a.online = online;
    const AttrStats& off = offline[attr];

    bool frequent = online.support >= min_support;
    bool low_cardinality =
        online.num_distinct_values <= options.max_distinct_values &&
        online.DistinctRatio(n) <= options.max_distinct_ratio &&
        online.num_distinct_values >= 2;
    a.good_dimension = frequent && low_cardinality;
    a.good_measure = frequent && off.numeric();
    analysis.attrs.push_back(a);
  }
  return analysis;
}

std::vector<LatticeSpec> EnumerateLattices(const AttributeStore& db,
                                           const CfsIndex& cfs,
                                           const CfsAnalysis& analysis,
                                           const std::vector<AttrStats>& offline,
                                           const EnumerationOptions& options) {
  // Candidate dimensions, indexed densely for the miner.
  std::vector<AttrId> dim_attrs;
  for (const auto& a : analysis.attrs) {
    if (a.good_dimension) dim_attrs.push_back(a.attr);
  }
  if (dim_attrs.empty()) return {};

  std::map<AttrId, size_t> support;
  for (const auto& a : analysis.attrs) support[a.attr] = a.online.support;

  // Transactions: the candidate-dimension attributes of each fact.
  size_t n = cfs.size();
  std::vector<std::vector<int>> transactions(n);
  for (size_t di = 0; di < dim_attrs.size(); ++di) {
    ForEachCfsMatch(db.attribute(dim_attrs[di]), cfs.members(),
                    [&](size_t mi, size_t /*si*/) {
                      transactions[mi].push_back(static_cast<int>(di));
                    });
  }

  size_t min_support =
      std::max<size_t>(1, static_cast<size_t>(options.min_support_ratio *
                                              static_cast<double>(n)));
  std::vector<std::vector<int>> mfs =
      MineMaximalFrequentSets(transactions, min_support, options.max_dims);

  // Build dimension sets: resolve conflicts, dedup.
  std::set<std::vector<AttrId>> seen;
  std::vector<std::vector<AttrId>> dim_sets;
  for (const auto& itemset : mfs) {
    std::vector<AttrId> dims;
    for (int item : itemset) dims.push_back(dim_attrs[item]);
    // Rule (b-ii): no attribute together with its derivation. Keep the more
    // supported of a conflicting pair.
    std::sort(dims.begin(), dims.end(), [&](AttrId a, AttrId b) {
      return support[a] > support[b];
    });
    std::vector<AttrId> kept;
    for (AttrId d : dims) {
      bool conflict = false;
      for (AttrId k : kept) conflict |= DerivationConflict(db, d, k);
      if (!conflict) kept.push_back(d);
    }
    std::sort(kept.begin(), kept.end());
    if (kept.empty()) continue;
    if (seen.insert(kept).second) dim_sets.push_back(std::move(kept));
  }

  // Prefer larger, better-supported lattices when capping.
  std::stable_sort(dim_sets.begin(), dim_sets.end(),
                   [&](const auto& a, const auto& b) {
                     if (a.size() != b.size()) return a.size() > b.size();
                     size_t sa = 0, sb = 0;
                     for (AttrId d : a) sa += support[d];
                     for (AttrId d : b) sb += support[d];
                     return sa > sb;
                   });
  if (dim_sets.size() > options.max_lattices_per_cfs) {
    dim_sets.resize(options.max_lattices_per_cfs);
  }

  // Rule (c): measures per lattice.
  std::vector<LatticeSpec> lattices;
  for (auto& dims : dim_sets) {
    LatticeSpec spec;
    spec.dims = std::move(dims);

    // The implicit fact-count measure: "number of CEOs by ...".
    spec.measures.push_back(MeasureSpec{kInvalidAttr, sparql::AggFunc::kCount});

    std::vector<AttrId> measure_attrs;
    for (const auto& a : analysis.attrs) {
      if (!a.good_measure) continue;
      bool excluded = false;
      for (AttrId d : spec.dims) {
        excluded |= (a.attr == d) || DerivationConflict(db, a.attr, d);
      }
      if (!excluded) measure_attrs.push_back(a.attr);
    }
    std::sort(measure_attrs.begin(), measure_attrs.end(),
              [&](AttrId a, AttrId b) {
                if (support[a] != support[b]) return support[a] > support[b];
                return a < b;
              });
    if (measure_attrs.size() > options.max_measures_per_lattice) {
      measure_attrs.resize(options.max_measures_per_lattice);
    }
    for (AttrId m : measure_attrs) {
      const AttrStats& off = offline[m];
      spec.measures.push_back(MeasureSpec{m, sparql::AggFunc::kSum});
      spec.measures.push_back(MeasureSpec{m, sparql::AggFunc::kAvg});
      if (options.use_min_max && off.numeric()) {
        spec.measures.push_back(MeasureSpec{m, sparql::AggFunc::kMin});
        spec.measures.push_back(MeasureSpec{m, sparql::AggFunc::kMax});
      }
    }
    lattices.push_back(std::move(spec));
  }
  return lattices;
}

size_t CountCandidateAggregates(uint32_t cfs_id,
                                const std::vector<LatticeSpec>& lattices) {
  std::set<AggregateKey> keys;
  for (const auto& lattice : lattices) {
    size_t n = lattice.dims.size();
    for (uint32_t mask = 1; mask < (1u << n); ++mask) {
      std::vector<AttrId> dims;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) dims.push_back(lattice.dims[i]);
      }
      for (const auto& m : lattice.measures) {
        AggregateKey key;
        key.cfs_id = cfs_id;
        key.dims = dims;
        key.measure = m;
        keys.insert(std::move(key));
      }
    }
  }
  return keys.size();
}

std::string DescribeAggregate(const AttributeStore& db, const CandidateFactSet& cfs,
                              const AggregateKey& key) {
  std::string out;
  if (key.measure.is_count_star()) {
    out = "count(*)";
  } else {
    out = std::string(sparql::AggFuncName(key.measure.func)) + "(" +
          db.attribute(key.measure.attr).name + ")";
    for (char& c : out) c = static_cast<char>(std::tolower(c));
  }
  out += " of " + cfs.name + " by ";
  for (size_t i = 0; i < key.dims.size(); ++i) {
    if (i > 0) out += ", ";
    out += db.attribute(key.dims[i]).name;
  }
  return out;
}

}  // namespace spade
