#ifndef SPADE_CORE_REFERENCE_H_
#define SPADE_CORE_REFERENCE_H_

#include <vector>

#include "src/core/aggregate.h"
#include "src/store/preagg.h"

namespace spade {

/// \brief Direct (per-node) MDA evaluation with the paper's Section 2
/// semantics — the correctness oracle.
///
/// For every lattice node, each fact that has at least one value on *every*
/// node dimension contributes its pre-aggregated measure values exactly once
/// to each group formed by the cross-product of its dimension values. Facts
/// missing any node dimension do not contribute to that node. No node is
/// computed from another, so multi-valued dimensions cannot corrupt results;
/// the cost is re-scanning the facts for each of the 2^N nodes, which is
/// exactly what one-pass algorithms avoid.
///
/// The empty dimension set (the lattice's `all` node) aggregates the facts
/// having at least one value on some lattice dimension — the same fact
/// population the one-pass algorithms translate (Section 4.3).
///
/// Results are returned per node mask (bit i = spec.dims[i]) and measure, as
/// sorted group lists so that algorithm outputs can be compared exactly.
std::vector<AggregateResult> EvaluateReference(const AttributeStore& db,
                                               uint32_t cfs_id,
                                               const CfsIndex& cfs,
                                               const LatticeSpec& spec);

/// Evaluate a single node (dims must be a subset of spec.dims).
AggregateResult EvaluateReferenceNode(const AttributeStore& db, uint32_t cfs_id,
                                      const CfsIndex& cfs,
                                      const LatticeSpec& spec,
                                      const std::vector<AttrId>& dims,
                                      const MeasureSpec& measure);

/// Canonicalize group ordering (sort by dimension value terms) so results
/// from different algorithms compare with ==.
void SortGroups(AggregateResult* result);

}  // namespace spade

#endif  // SPADE_CORE_REFERENCE_H_
