#ifndef SPADE_CORE_ENUMERATION_H_
#define SPADE_CORE_ENUMERATION_H_

#include <vector>

#include "src/core/aggregate.h"
#include "src/stats/attr_stats.h"
#include "src/store/attribute_store.h"

namespace spade {

/// Rules of Aggregate Enumeration (Section 3, step 3).
struct EnumerationOptions {
  /// Rule (a-i): dimensions and measures must be frequent.
  double min_support_ratio = 0.1;
  /// Rule (a-ii): dimensions must not have too many distinct values relative
  /// to the number of facts ...
  double max_distinct_ratio = 0.5;
  /// ... nor in absolute terms (no grouping CEOs by birthday).
  size_t max_distinct_values = 500;
  /// Rule (b-i): lattices have at most N dimensions; readability peaks at
  /// N in {1,2,3,4}.
  size_t max_dims = 3;
  /// Complexity guards for large CFSs.
  size_t max_lattices_per_cfs = 24;
  size_t max_measures_per_lattice = 8;
  /// Assign min/max in addition to sum/avg to numeric measures.
  bool use_min_max = true;
};

/// Per-CFS view of one attribute after Online Attribute Analysis
/// (Section 3, step 2).
struct AnalyzedAttribute {
  AttrId attr = kInvalidAttr;
  OnlineAttrStats online;
  bool good_dimension = false;
  bool good_measure = false;
};

/// The analyzed-attribute pool of one CFS.
struct CfsAnalysis {
  std::vector<AnalyzedAttribute> attrs;

  const AnalyzedAttribute* Find(AttrId attr) const {
    for (const auto& a : attrs) {
      if (a.attr == attr) return &a;
    }
    return nullptr;
  }
};

/// Step 2: compute CFS-dependent statistics for every attribute whose support
/// in the CFS is non-zero, and classify candidates as dimension / measure
/// material. `offline` is the AttrStats array aligned with the database's
/// attribute ids (kind and global value bounds come from it).
CfsAnalysis AnalyzeAttributes(const AttributeStore& db, const CfsIndex& cfs,
                              const std::vector<AttrStats>& offline,
                              const EnumerationOptions& options);

/// Step 3: derive the lattices of a CFS.
///   (b) dimension sets = maximal frequent sets of good dimensions, filtered
///       to at most N attributes, with derivation conflicts removed (an
///       attribute and one derived from it cannot co-occur);
///   (c) measures = good measures minus the dimensions and attributes tied
///       to a dimension by derivation; every lattice also carries the
///       implicit count-of-facts measure (COUNT(*)).
std::vector<LatticeSpec> EnumerateLattices(const AttributeStore& db,
                                           const CfsIndex& cfs,
                                           const CfsAnalysis& analysis,
                                           const std::vector<AttrStats>& offline,
                                           const EnumerationOptions& options);

/// Total number of MDAs induced by a set of lattices (2^N nodes, each
/// carrying every measure), after cross-lattice deduplication. This is the
/// "#A" statistic of Table 2.
size_t CountCandidateAggregates(uint32_t cfs_id,
                                const std::vector<LatticeSpec>& lattices);

}  // namespace spade

#endif  // SPADE_CORE_ENUMERATION_H_
