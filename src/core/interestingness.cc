#include "src/core/interestingness.h"

#include <cmath>
#include <cstdlib>

namespace spade {

const char* InterestingnessName(InterestingnessKind kind) {
  switch (kind) {
    case InterestingnessKind::kVariance:
      return "variance";
    case InterestingnessKind::kSkewness:
      return "skewness";
    case InterestingnessKind::kKurtosis:
      return "kurtosis";
  }
  return "?";
}

namespace {

struct Moments {
  size_t n = 0;
  double mean = 0;
  double m2 = 0;  // sum of (x - mean)^2
  double m3 = 0;
  double m4 = 0;
};

Moments ComputeMoments(const std::vector<double>& values) {
  Moments m;
  m.n = values.size();
  if (m.n == 0) return m;
  double sum = 0;
  for (double v : values) sum += v;
  m.mean = sum / static_cast<double>(m.n);
  for (double v : values) {
    double d = v - m.mean;
    double d2 = d * d;
    m.m2 += d2;
    m.m3 += d2 * d;
    m.m4 += d2 * d2;
  }
  return m;
}

double SkewFromMoments(size_t n, double m2, double m3) {
  if (n < 2 || m2 <= 0) return 0;
  double nn = static_cast<double>(n);
  double sigma2 = m2 / nn;  // biased variance
  return (m3 / nn) / std::pow(sigma2, 1.5);
}

double KurtFromMoments(size_t n, double m2, double m4) {
  if (n < 2 || m2 <= 0) return 0;
  double nn = static_cast<double>(n);
  double sigma2 = m2 / nn;
  return (m4 / nn) / (sigma2 * sigma2) - 3.0;
}

}  // namespace

double Variance(const std::vector<double>& values) {
  Moments m = ComputeMoments(values);
  if (m.n < 2) return 0;
  return m.m2 / static_cast<double>(m.n - 1);
}

double Skewness(const std::vector<double>& values) {
  Moments m = ComputeMoments(values);
  return SkewFromMoments(m.n, m.m2, m.m3);
}

double Kurtosis(const std::vector<double>& values) {
  Moments m = ComputeMoments(values);
  return KurtFromMoments(m.n, m.m2, m.m4);
}

double Interestingness(InterestingnessKind kind, const std::vector<double>& values) {
  switch (kind) {
    case InterestingnessKind::kVariance:
      return Variance(values);
    case InterestingnessKind::kSkewness:
      return std::fabs(Skewness(values));
    case InterestingnessKind::kKurtosis:
      return std::fabs(Kurtosis(values));
  }
  return 0;
}

std::vector<double> InterestingnessGradient(InterestingnessKind kind,
                                            const std::vector<double>& values) {
  size_t g = values.size();
  std::vector<double> grad(g, 0.0);
  if (g < 2) return grad;
  Moments m = ComputeMoments(values);
  double gg = static_cast<double>(g);

  switch (kind) {
    case InterestingnessKind::kVariance: {
      // dH/dy_s = 2/(G-1) (y_s - mean)   (Appendix A).
      for (size_t s = 0; s < g; ++s) {
        grad[s] = 2.0 / (gg - 1.0) * (values[s] - m.mean);
      }
      return grad;
    }
    case InterestingnessKind::kSkewness: {
      // h = m3 / sigma^3 with m3 = M3/G, sigma^2 = M2/G. Using the chain
      // rule with dM3/dy_s = 3[(y_s - mean)^2 - M2/G] and
      // dM2/dy_s = 2(y_s - mean):
      if (m.m2 <= 0) return grad;
      double sigma2 = m.m2 / gg;
      double sigma3 = std::pow(sigma2, 1.5);
      double m3 = m.m3 / gg;
      for (size_t s = 0; s < g; ++s) {
        double d = values[s] - m.mean;
        double dm3 = 3.0 / gg * (d * d - m.m2 / gg);
        double dsigma2 = 2.0 * d / gg;
        grad[s] = dm3 / sigma3 - 1.5 * m3 / std::pow(sigma2, 2.5) * dsigma2;
      }
      return grad;
    }
    case InterestingnessKind::kKurtosis: {
      // h = m4 / sigma^4 - 3, same chain-rule development.
      if (m.m2 <= 0) return grad;
      double sigma2 = m.m2 / gg;
      double m4 = m.m4 / gg;
      for (size_t s = 0; s < g; ++s) {
        double d = values[s] - m.mean;
        double dm4 = 4.0 / gg * (d * d * d - m.m3 / gg);
        double dsigma2 = 2.0 * d / gg;
        grad[s] = dm4 / (sigma2 * sigma2) -
                  2.0 * m4 / (sigma2 * sigma2 * sigma2) * dsigma2;
      }
      return grad;
    }
  }
  return grad;
}

void OnlineMoments::Add(double x) {
  // Pébay's single-pass update of central moments up to order 4.
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  double n1 = static_cast<double>(n_);
  ++n_;
  double n = static_cast<double>(n_);
  double delta = x - mean_;
  double delta_n = delta / n;
  double delta_n2 = delta_n * delta_n;
  double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3 * n + 3) + 6 * delta_n2 * m2_ -
         4 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2) - 3 * delta_n * m2_;
  m2_ += term1;
}

double OnlineMoments::variance() const {
  if (n_ < 2) return 0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineMoments::skewness() const { return SkewFromMoments(n_, m2_, m3_); }

double OnlineMoments::kurtosis() const { return KurtFromMoments(n_, m2_, m4_); }

double OnlineMoments::Score(InterestingnessKind kind) const {
  switch (kind) {
    case InterestingnessKind::kVariance:
      return variance();
    case InterestingnessKind::kSkewness:
      return std::fabs(skewness());
    case InterestingnessKind::kKurtosis:
      return std::fabs(kurtosis());
  }
  return 0;
}

double NormalQuantile(double p) {
  // Peter Acklam's inverse normal CDF approximation.
  if (p <= 0) return -1e9;
  if (p >= 1) return 1e9;
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

}  // namespace spade
