#ifndef SPADE_CORE_LATTICE_H_
#define SPADE_CORE_LATTICE_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/aggregate.h"
#include "src/exec/thread_pool.h"
#include "src/store/attribute_store.h"
#include "src/util/cancel.h"
#include "src/util/failpoint.h"
#include "src/util/rng.h"
#include "src/util/span.h"
#include "src/util/timer.h"

namespace spade {

/// \brief Value encoding of one dimension over one CFS.
///
/// The distinct values a dimension takes among the CFS facts are sorted and
/// coded 0..V-1; code V is the implicit `null` added to every dimension's
/// domain for facts missing it (Section 4.3, Data Translation). Each fact
/// maps to its sorted list of value codes — possibly several (multi-valued
/// dimension), possibly none (missing).
struct DimensionEncoding {
  AttrId attr = kInvalidAttr;
  std::vector<TermId> values;                    ///< code -> term
  std::vector<std::vector<int32_t>> fact_codes;  ///< FactId -> sorted codes
  size_t num_multi_facts = 0;                    ///< facts with >= 2 values

  int32_t null_code() const { return static_cast<int32_t>(values.size()); }
  int domain_size() const { return static_cast<int>(values.size()) + 1; }
  bool multi_valued() const { return num_multi_facts > 0; }
};

/// Build the encoding of `attr` over `cfs`.
DimensionEncoding BuildDimensionEncoding(const AttributeStore& db, const CfsIndex& cfs,
                                         AttrId attr);

/// \brief Physical layout of the multidimensional space: a dimension order
/// (position 0 varies slowest across partitions) and per-dimension chunking.
/// A partition is one combination of chunk coordinates, holding
/// chunk[0] x ... x chunk[N-1] cells (Section 4.1's "partitions").
struct CubeLayout {
  std::vector<int> order;       ///< order[k] = dim index at position k
  std::vector<int> pos;         ///< pos[dim] = position in `order`
  std::vector<int> extent;      ///< per dim: domain size incl. null
  std::vector<int> chunk;       ///< per dim: chunk size (<= extent)
  std::vector<int> num_chunks;  ///< per dim: ceil(extent / chunk)
  uint64_t num_partitions = 1;

  size_t num_dims() const { return extent.size(); }

  /// Partition id of the given per-dim chunk coordinates.
  uint64_t EncodePartition(const std::vector<int>& chunk_coords) const;
  /// Per-dim chunk coordinates of partition `p`.
  std::vector<int> DecodePartition(uint64_t p) const;
  /// Allocation-free DecodePartition into a caller-owned buffer (resized to
  /// num_dims); the scaffold's per-partition hot path.
  void DecodePartitionInto(uint64_t p, std::vector<int>* chunk_coords) const;
  /// Pack per-dim value coordinates into a cell id (radix = extents, in dim
  /// index order — independent of `order`).
  uint64_t PackCell(const std::vector<int32_t>& coords) const;
  std::vector<int32_t> UnpackCell(uint64_t cell) const;
};

/// \brief One node of the lattice in the Minimum-Memory Spanning Tree.
struct MmstNode {
  uint32_t mask = 0;        ///< subset of lattice dims (bit i = dim i)
  int parent = -1;          ///< node index of the MMST parent (-1 for root)
  int dropped_dim = -1;     ///< dim index dropped going parent -> this
  std::vector<int> children;
  /// Dims (ascending) present in `mask`.
  std::vector<int> dims;
  /// Bit i set => dim i is held at FULL extent in this node's memory; clear
  /// (and in mask) => held at chunk granularity. A dim needs full extent iff
  /// some missing dim with more than one chunk varies slower than it — its
  /// region would otherwise be revisited (Section 4.1 memory model).
  uint32_t full_mask = 0;
  /// Per `dims` position: local array extent and stride.
  std::vector<int> local_extent;
  std::vector<uint64_t> stride;
  uint64_t memory_cells = 1;
};

/// \brief The lattice of 2^N nodes plus its Minimum-Memory Spanning Tree.
///
/// ArrayCube [49] picks, per node, the parent minimizing the memory needed to
/// evaluate all aggregates in one pass; the memory depends on the dimension
/// order. With N <= 4 we search all N! orders exactly and keep the cheapest
/// (sum of per-node array sizes). Parents are then chosen to minimize the
/// size of the array each child must scan during propagation.
class Mmst {
 public:
  /// `extents`: per-dim domain sizes (incl. null); `target_chunk`: desired
  /// distinct values per dimension per partition.
  static Mmst Build(const std::vector<int>& extents, int target_chunk);

  const CubeLayout& layout() const { return layout_; }
  const std::vector<MmstNode>& nodes() const { return nodes_; }
  /// Node index for a dim subset; nodes are indexed by mask.
  const MmstNode& node(uint32_t mask) const { return nodes_[mask]; }
  size_t num_dims() const { return layout_.num_dims(); }
  int root() const { return static_cast<int>(nodes_.size()) - 1; }

  /// Sum of memory_cells over all nodes (the minimized objective). Cached at
  /// Build time.
  uint64_t total_memory_cells() const { return total_memory_cells_; }

  /// Node indexes in topological order: parents before children. Cached at
  /// Build time — CubeScaffold::Run and SetWantedNodes consume it per
  /// invocation and must not re-sort.
  const std::vector<int>& TopologicalOrder() const { return topo_order_; }

 private:
  CubeLayout layout_;
  std::vector<MmstNode> nodes_;  // indexed by mask; root = (1<<N)-1
  std::vector<int> topo_order_;
  uint64_t total_memory_cells_ = 0;
};

/// \brief Result of Data Translation (Section 4.3): the partitioned array
/// representation, plus the exact per-root-group fact counts and the
/// stratified reservoir sample that early-stop consumes.
struct Translation {
  /// partitions[p] = (packed cell id, fact) pairs, facts of partition p.
  std::vector<std::vector<std::pair<uint64_t, FactId>>> partitions;
  /// Exact fact count per root cell (group sizes; Appendix B).
  std::unordered_map<uint64_t, uint32_t> root_group_count;
  /// Reservoir sample per root cell (present only when sampling enabled).
  std::unordered_map<uint64_t, std::vector<FactId>> reservoirs;
  /// Facts contributing to at least one cell.
  size_t num_facts_translated = 0;
  /// Combination explosion guard: combos dropped by the per-fact cap. Zero in
  /// every experiment of the paper's scale; reported, never silent.
  size_t num_dropped_combos = 0;
};

struct TranslationOptions {
  /// Cap on cells one fact may occupy (cross-product of its multi-values).
  size_t max_combos_per_fact = 4096;
  /// Reservoir capacity per root group; 0 disables sampling.
  size_t sample_capacity = 0;
  Rng* rng = nullptr;  ///< required when sample_capacity > 0
  /// Half-open fact-id range to translate; facts outside it are ignored.
  /// {0, kInvalidFact} (the default) means every fact. Sharded evaluation
  /// translates each range on its own worker; sampling is incompatible with
  /// ranges (the reservoir RNG stream is sequential across all facts).
  FactId fact_begin = 0;
  FactId fact_end = kInvalidFact;
};

/// Translate the CFS facts into the partitioned array representation. A fact
/// with no value on any dimension is skipped; missing dimensions map to the
/// null code.
Translation TranslateData(const std::vector<DimensionEncoding>& dims,
                          const CubeLayout& layout,
                          const TranslationOptions& options);

/// Merge per-shard translations of ascending, disjoint fact ranges into the
/// translation of the whole CFS — exactly. Partition vectors concatenate in
/// shard order (each shard emits its facts in ascending order, so the
/// concatenation reproduces the unsharded fact-major order bit for bit);
/// root-group counts add; the scalar counters add. Sampling reservoirs are
/// not merged (sharded translation never samples). Consumes `shards`.
Translation MergeShardTranslations(std::vector<Translation> shards);

/// \brief Generic one-pass lattice evaluation engine.
///
/// Shared by MVDCube (cells = Roaring bitmaps of facts) and by the ArrayCube
/// baseline (cells = aggregate-value accumulators): the partition loop, the
/// region bookkeeping, the parent->child propagation cascade, and the flush
/// discipline are identical; only the cell payload and the merge/emit
/// operations differ.
///
/// Protocol per partition (in layout order):
///   1. the root's cells are loaded via `load(cell, fact)`;
///   2. Flush(root): for every child whose region completed, recursively
///      flush it, then merge the parent's cells down via `merge(dst, src)`;
///      finally `emit(node_mask, coords, cell)` is called for every non-empty
///      cell of the flushed node — exactly once per group over the whole run.
///
/// `merge`'s src is passed as a MUTABLE lvalue, so a MergeFn may take
/// `Cell&` and normalize src in place — ArrayCube uses this to lazily fold
/// root fact buffers through the measure-fold kernels on first touch. The
/// same src cell is merged into every child and then emitted before the
/// scaffold resets it, so mutations must preserve the cell's logical value
/// (convert representation, don't consume). Functors taking `const Cell&`
/// work unchanged.
///
/// `emit` receives global value coordinates (length N, null codes included,
/// -1 on absent dims) as a Span into scaffold-owned scratch, and a mutable
/// reference to the cell — the cell is cleared right after emit returns, so
/// the consumer may steal its contents (ParallelLatticeRun moves bitmaps out
/// instead of copying). The caller decides what to do with null groups
/// (MVDCube reports only null-free groups but propagates everything,
/// Section 4.3).
///
/// The load/merge/emit callables are template parameters, not std::function:
/// the per-fact and per-cell inner loops inline the functors instead of
/// paying an indirect dispatch per call, and the flush path reuses
/// scaffold-owned scratch buffers — no heap allocation per cell.
template <typename Cell>
class CubeScaffold {
 public:
  explicit CubeScaffold(const Mmst* mmst) : mmst_(mmst) {
    states_.resize(mmst_->nodes().size());
    subtree_needed_.assign(states_.size(), true);
  }

  /// Restrict work to the nodes whose results are consumed: a node is
  /// processed iff it, or some descendant in the MMST, has `wanted` set.
  /// Early-stop-pruned and ARM-reused nodes still propagate when a live
  /// descendant needs their cells, but nodes whose whole subtree is dead are
  /// skipped entirely.
  void SetWantedNodes(const std::vector<bool>& wanted) {
    subtree_needed_ = wanted;
    subtree_needed_.resize(states_.size(), true);
    // Iterate children before parents so every child's flag is final before
    // its parents aggregate it.
    const std::vector<int>& topo = mmst_->TopologicalOrder();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      for (int child : mmst_->nodes()[*it].children) {
        if (subtree_needed_[child]) subtree_needed_[*it] = true;
      }
    }
  }

  /// Peak cells resident after Run() (ablation / memory accounting).
  uint64_t allocated_cells() const {
    uint64_t total = 0;
    for (const auto& st : states_) total += st.cells.size();
    return total;
  }

  /// Stream every partition through the MMST (the sequential protocol).
  template <typename LoadFn, typename MergeFn, typename EmitFn>
  void Run(const Translation& data, const LoadFn& load, const MergeFn& merge,
           const EmitFn& emit, const CancelCheck* cancel = nullptr) {
    Run(data, 0, mmst_->layout().num_partitions, load, merge, emit, cancel);
  }

  /// Process only partitions [p_begin, p_end) — one contiguous slice of the
  /// full sequence. A contiguous slice of a non-revisiting partition
  /// sequence is itself non-revisiting, so the flush discipline (each group
  /// emitted at most once per Run) is preserved; groups whose region spans a
  /// slice boundary are emitted by several slices with partial cells, which
  /// ParallelLatticeRun reconciles by merging. The final cascade drains
  /// whatever regions remain open at the slice boundary.
  /// `cancel` (optional): checked once per partition. On AbortNow() the run
  /// returns without the final cascade — partially emitted output is only
  /// meaningful to callers that discard aborted results wholesale
  /// (ParallelLatticeRun's callers drop the whole CFS on a hard abort).
  template <typename LoadFn, typename MergeFn, typename EmitFn>
  void Run(const Translation& data, uint64_t p_begin, uint64_t p_end,
           const LoadFn& load, const MergeFn& merge, const EmitFn& emit,
           const CancelCheck* cancel = nullptr) {
    const CubeLayout& layout = mmst_->layout();
    size_t n = layout.num_dims();
    if (!subtree_needed_[mmst_->root()]) return;  // nothing to compute at all
    partition_scratch_.assign(n, 0);
    load_coords_.assign(n, 0);
    for (uint64_t p = p_begin; p < p_end; ++p) {
      if (cancel != nullptr && cancel->AbortNow()) return;
      if (p < data.partitions.size() && data.partitions[p].empty()) continue;
      layout.DecodePartitionInto(p, &partition_scratch_);
      // Load the partition into the root.
      int root_idx = mmst_->root();
      NodeState& root = states_[root_idx];
      SetRegion(root_idx, partition_scratch_);
      if (p < data.partitions.size()) {
        for (const auto& [cell_id, fact] : data.partitions[p]) {
          UnpackInto(layout, cell_id, &load_coords_);
          uint64_t off = LocalOffset(root_idx, load_coords_.data());
          if (root.cells[off].Empty()) root.occupied.push_back(off);
          load(&root.cells[off], fact);
        }
      }
      Flush(root_idx, merge, emit);
    }
    // Final cascade: parents before children so every node drains downward.
    for (int idx : mmst_->TopologicalOrder()) {
      if (idx == mmst_->root()) continue;  // root flushed per partition
      if (states_[idx].has_region) Flush(idx, merge, emit);
    }
  }

 private:
  struct NodeState {
    std::vector<Cell> cells;          ///< allocated once, reused per region
    std::vector<uint64_t> occupied;   ///< offsets of non-empty cells
    std::vector<int> region;          ///< per-dim chunk coords (-1 on full dims)
    /// Flat [occupied x num_dims] decode buffer, reused across flushes of
    /// this node. Per-node (not scaffold-wide) because Flush recurses into
    /// children between decoding and consuming the coordinates.
    std::vector<int32_t> coord_scratch;
    bool has_region = false;
  };

  void SetRegion(int idx, const std::vector<int>& pc) {
    const MmstNode& node = mmst_->nodes()[idx];
    NodeState& st = states_[idx];
    if (!st.has_region) {
      if (st.cells.size() != node.memory_cells) {
        st.cells.assign(node.memory_cells, Cell());
      }
      st.region.assign(mmst_->layout().num_dims(), -1);
      st.has_region = true;
    }
    for (int d : node.dims) {
      if (!(node.full_mask & (1u << d))) st.region[d] = pc[d];
    }
  }

  /// Target region of node `idx` induced by parent region `parent_region`;
  /// true if it differs from the node's current region.
  bool RegionChanged(int idx, const std::vector<int>& parent_region) const {
    const MmstNode& node = mmst_->nodes()[idx];
    const NodeState& st = states_[idx];
    if (!st.has_region) return false;
    for (int d : node.dims) {
      if (node.full_mask & (1u << d)) continue;
      if (st.region[d] != parent_region[d]) return true;
    }
    return false;
  }

  uint64_t LocalOffset(int idx, const int32_t* coords) const {
    const MmstNode& node = mmst_->nodes()[idx];
    const NodeState& st = states_[idx];
    const CubeLayout& layout = mmst_->layout();
    uint64_t offset = 0;
    for (size_t k = 0; k < node.dims.size(); ++k) {
      int d = node.dims[k];
      int32_t comp = coords[d];
      if (!(node.full_mask & (1u << d))) {
        comp -= st.region[d] * layout.chunk[d];
      }
      offset += static_cast<uint64_t>(comp) * node.stride[k];
    }
    return offset;
  }

  /// Global coords of a local cell offset, written into `out` (length
  /// num_dims): -1 where dims are absent, value codes elsewhere.
  void GlobalCoordsInto(int idx, uint64_t offset, int32_t* out) const {
    const MmstNode& node = mmst_->nodes()[idx];
    const NodeState& st = states_[idx];
    const CubeLayout& layout = mmst_->layout();
    for (size_t d = 0; d < layout.num_dims(); ++d) out[d] = -1;
    for (size_t k = 0; k < node.dims.size(); ++k) {
      int d = node.dims[k];
      int32_t comp = static_cast<int32_t>((offset / node.stride[k]) %
                                          static_cast<uint64_t>(node.local_extent[k]));
      if (!(node.full_mask & (1u << d))) {
        comp += st.region[d] * layout.chunk[d];
      }
      out[d] = comp;
    }
  }

  template <typename MergeFn, typename EmitFn>
  void Flush(int idx, const MergeFn& merge, const EmitFn& emit) {
    const MmstNode& node = mmst_->nodes()[idx];
    NodeState& st = states_[idx];
    if (!st.has_region) return;
    const size_t n = mmst_->layout().num_dims();

    // Decode each occupied cell's coordinates once.
    st.coord_scratch.resize(st.occupied.size() * n);
    for (size_t i = 0; i < st.occupied.size(); ++i) {
      GlobalCoordsInto(idx, st.occupied[i], st.coord_scratch.data() + i * n);
    }

    // Propagate to children first (their regions derive from ours).
    for (int child_idx : node.children) {
      if (!subtree_needed_[child_idx]) continue;
      if (RegionChanged(child_idx, st.region)) {
        Flush(child_idx, merge, emit);
      }
      // region_scratch_ is scaffold-wide: it is written after any recursive
      // child flush returns and consumed immediately by SetRegion.
      region_scratch_.assign(st.region.begin(), st.region.end());
      for (size_t i = 0; i < region_scratch_.size(); ++i) {
        if (region_scratch_[i] < 0) region_scratch_[i] = 0;
      }
      SetRegion(child_idx, region_scratch_);
      // Merge every non-empty cell downward.
      NodeState& child = states_[child_idx];
      for (size_t i = 0; i < st.occupied.size(); ++i) {
        uint64_t child_off =
            LocalOffset(child_idx, st.coord_scratch.data() + i * n);
        if (child.cells[child_off].Empty()) child.occupied.push_back(child_off);
        merge(&child.cells[child_off], st.cells[st.occupied[i]]);
      }
    }

    // Emit completed cells (mutable: cleared right below, so emit may steal).
    for (size_t i = 0; i < st.occupied.size(); ++i) {
      emit(node.mask, Span<int32_t>(st.coord_scratch.data() + i * n, n),
           st.cells[st.occupied[i]]);
    }

    // Clear only the touched cells; keep the array allocated for reuse.
    for (uint64_t off : st.occupied) st.cells[off] = Cell();
    st.occupied.clear();
    st.has_region = false;
  }

  const Mmst* mmst_;
  std::vector<NodeState> states_;
  std::vector<bool> subtree_needed_;
  std::vector<int> partition_scratch_;   ///< DecodePartitionInto buffer
  std::vector<int32_t> load_coords_;     ///< UnpackInto buffer (root loading)
  std::vector<int> region_scratch_;      ///< child-region buffer (Flush)

  static void UnpackInto(const CubeLayout& layout, uint64_t cell,
                         std::vector<int32_t>* coords) {
    for (size_t i = layout.num_dims(); i-- > 0;) {
      (*coords)[i] = static_cast<int32_t>(cell % layout.extent[i]);
      cell /= layout.extent[i];
    }
  }
};

/// Pack a node's global coordinates into the canonical group id: absent dims
/// (mask bit clear, coordinate -1) pack as 0, so ids are unique within a
/// node and ascending id order is lexicographic over the present dims in
/// dim-index significance. The radix is the full extents — independent of
/// the layout order, so the id is stable across chunkings.
inline uint64_t PackCellMasked(const CubeLayout& layout, uint32_t mask,
                               Span<int32_t> coords) {
  uint64_t cell = 0;
  for (size_t i = 0; i < layout.extent.size(); ++i) {
    int32_t c = (mask & (1u << i)) ? coords[i] : 0;
    cell = cell * static_cast<uint64_t>(layout.extent[i]) +
           static_cast<uint64_t>(c);
  }
  return cell;
}

/// Inverse of PackCellMasked: writes value codes on present dims and -1 on
/// absent dims (matching the scaffold's emit convention).
inline void UnpackCellMaskedInto(const CubeLayout& layout, uint32_t mask,
                                 uint64_t cell, int32_t* coords) {
  for (size_t i = layout.extent.size(); i-- > 0;) {
    int32_t c = static_cast<int32_t>(cell % static_cast<uint64_t>(layout.extent[i]));
    cell /= static_cast<uint64_t>(layout.extent[i]);
    coords[i] = (mask & (1u << i)) ? c : -1;
  }
}

/// One worker's contiguous share of the partition sequence.
struct PartitionSlice {
  uint64_t begin = 0;
  uint64_t end = 0;  ///< half-open
};

/// Split [0, num_partitions) into at most `num_slices` contiguous slices,
/// balanced by translated (cell, fact) pair count. The slicing is a pure
/// function of its inputs; it affects only wall-clock, never results
/// (ParallelLatticeRun's merge is slicing-independent).
std::vector<PartitionSlice> MakePartitionSlices(const Translation& data,
                                                uint64_t num_partitions,
                                                size_t num_slices);

/// Instrumentation of one ParallelLatticeRun.
struct ParallelLatticeStats {
  size_t num_slices = 0;
  double wall_ms = 0;   ///< whole run: slices + merge + canonical emit
  double work_ms = 0;   ///< per-worker scaffold time, summed
  double merge_ms = 0;  ///< partial merge + canonical emit (single wall)
  /// (node, group) partial cells collected across all slices before the
  /// merge — the memory price of partition parallelism over streaming emit.
  uint64_t peak_partial_cells = 0;
};

/// \brief Partition-parallel lattice computation (the PR 3 tentpole).
///
/// The partition sequence is split into contiguous slices, one
/// CubeScaffold per slice run concurrently on `scheduler`. Instead of
/// emitting, each slice collects per-node partial results keyed by the
/// canonical packed cell id; a group whose region spans a slice boundary is
/// collected by several slices with partial cells. The partials are then
/// folded per node — concatenated in ascending slice order, stable-sorted
/// by cell id, duplicates combined with `merge` — and a single thread emits
/// every surviving group in canonical order: node mask ascending, packed
/// cell id ascending.
///
/// Determinism: with set-semantics cells (MVDCube's fact bitmaps) the fold
/// is a set union, so the merged cell of every group equals the sequential
/// scaffold's cell exactly, for ANY slicing — and the canonical emit order
/// is worker-count-independent by construction. Downstream FP accumulation
/// (bitmap ForEach scans fact ids ascending; the ARM sees groups in
/// canonical order) is therefore bit-identical at every worker count. With
/// FP-accumulator cells the fold order is ascending-slice, deterministic
/// for a fixed worker count but not across counts (ArrayCube keeps the
/// sequential scaffold).
///
/// `keep(mask, coords)` filters at collection time (nodes with no consumer,
/// null-coordinate groups); `emit(mask, coords, cell)` receives a mutable
/// cell it may consume. `wanted` is forwarded to every slice's
/// SetWantedNodes (nullptr = all nodes).
template <typename Cell, typename LoadFn, typename MergeFn, typename KeepFn,
          typename EmitFn>
void ParallelLatticeRun(const Mmst& mmst, const Translation& data,
                        const std::vector<bool>* wanted, size_t num_workers,
                        TaskScheduler* scheduler, const LoadFn& load,
                        const MergeFn& merge, const KeepFn& keep,
                        const EmitFn& emit,
                        ParallelLatticeStats* stats = nullptr,
                        const CancelCheck* cancel = nullptr) {
  const CubeLayout& layout = mmst.layout();
  const size_t n = layout.num_dims();
  const size_t num_nodes = mmst.nodes().size();
  Timer wall;

  std::vector<PartitionSlice> slices = MakePartitionSlices(
      data, layout.num_partitions, std::max<size_t>(1, num_workers));

  // Stage 1: one scaffold per slice, collecting (cell id, Cell) partials
  // per node. Within a slice each group is emitted at most once (flush
  // discipline), so the per-node sort key is unique.
  using NodePartial = std::vector<std::pair<uint64_t, Cell>>;
  std::vector<std::vector<NodePartial>> partials(slices.size());
  std::vector<double> slice_ms(slices.size(), 0.0);
  auto run_slice = [&](size_t s) {
    Timer t;
    SPADE_FAILPOINT("core.lattice.slice");
    std::vector<NodePartial>& mine = partials[s];
    mine.resize(num_nodes);
    CubeScaffold<Cell> scaffold(&mmst);
    if (wanted != nullptr) scaffold.SetWantedNodes(*wanted);
    scaffold.Run(data, slices[s].begin, slices[s].end, load, merge,
                 [&](uint32_t mask, Span<int32_t> coords, Cell& cell) {
                   if (!keep(mask, coords)) return;
                   mine[mask].emplace_back(PackCellMasked(layout, mask, coords),
                                           std::move(cell));
                 },
                 cancel);
    for (NodePartial& p : mine) {
      std::sort(p.begin(), p.end(), [](const std::pair<uint64_t, Cell>& a,
                                       const std::pair<uint64_t, Cell>& b) {
        return a.first < b.first;
      });
    }
    slice_ms[s] = t.ElapsedMillis();
  };
  if (scheduler != nullptr && slices.size() > 1) {
    scheduler->ParallelFor(slices.size(), run_slice, cancel);
  } else {
    for (size_t s = 0; s < slices.size(); ++s) {
      if (cancel != nullptr && cancel->AbortNow()) break;
      run_slice(s);
    }
  }

  uint64_t partial_cells = 0;
  for (const auto& slice_partials : partials) {
    for (const NodePartial& p : slice_partials) partial_cells += p.size();
  }

  // Stage 2: fold the slices per node. Nodes are independent, so the fold
  // fans out too; the per-node result is slicing-independent for
  // set-semantics merges (see class comment).
  Timer merge_timer;
  std::vector<NodePartial> merged(num_nodes);
  if (slices.size() == 1) {
    merged = std::move(partials[0]);  // sorted, duplicate-free already
  } else {
    auto fold_node = [&](size_t mask) {
      if (cancel != nullptr && cancel->AbortNow()) return;
      NodePartial& out = merged[mask];
      size_t total = 0;
      for (const auto& sp : partials) total += sp[mask].size();
      if (total == 0) return;
      out.reserve(total);
      for (auto& sp : partials) {
        for (auto& kv : sp[mask]) out.push_back(std::move(kv));
      }
      // Stable: duplicates stay in ascending slice order for the merge.
      std::stable_sort(out.begin(), out.end(),
                       [](const std::pair<uint64_t, Cell>& a,
                          const std::pair<uint64_t, Cell>& b) {
                         return a.first < b.first;
                       });
      size_t w = 0;
      for (size_t r = 1; r < out.size(); ++r) {
        if (out[r].first == out[w].first) {
          merge(&out[w].second, out[r].second);
        } else if (++w != r) {  // guard the no-gap case: self-move clears
          out[w] = std::move(out[r]);
        }
      }
      out.resize(w + 1);
    };
    if (scheduler != nullptr && scheduler->parallel() && num_nodes > 1) {
      scheduler->ParallelFor(num_nodes, fold_node);
    } else {
      for (size_t mask = 0; mask < num_nodes; ++mask) fold_node(mask);
    }
  }

  // Stage 3: canonical emit, single-threaded — node mask ascending, packed
  // cell id ascending. This is the one ARM stream every configuration
  // produces.
  std::vector<int32_t> coords(n);
  for (size_t mask = 0; mask < num_nodes; ++mask) {
    if (cancel != nullptr && cancel->AbortNow()) break;
    for (auto& [cell_id, cell] : merged[mask]) {
      UnpackCellMaskedInto(layout, static_cast<uint32_t>(mask), cell_id,
                           coords.data());
      emit(static_cast<uint32_t>(mask), Span<int32_t>(coords.data(), n), cell);
    }
  }

  if (stats != nullptr) {
    double work_ms = 0;
    for (double ms : slice_ms) work_ms += ms;
    // Plain assignment throughout: the struct always describes this one run
    // (callers aggregate across runs via EvalStats::MergeLattice).
    stats->num_slices = slices.size();
    stats->wall_ms = wall.ElapsedMillis();
    stats->work_ms = work_ms;
    stats->merge_ms = merge_timer.ElapsedMillis();
    stats->peak_partial_cells = partial_cells;
  }
}

}  // namespace spade

#endif  // SPADE_CORE_LATTICE_H_
