#ifndef SPADE_CORE_LATTICE_H_
#define SPADE_CORE_LATTICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/core/aggregate.h"
#include "src/store/attribute_store.h"
#include "src/util/rng.h"

namespace spade {

/// \brief Value encoding of one dimension over one CFS.
///
/// The distinct values a dimension takes among the CFS facts are sorted and
/// coded 0..V-1; code V is the implicit `null` added to every dimension's
/// domain for facts missing it (Section 4.3, Data Translation). Each fact
/// maps to its sorted list of value codes — possibly several (multi-valued
/// dimension), possibly none (missing).
struct DimensionEncoding {
  AttrId attr = kInvalidAttr;
  std::vector<TermId> values;                    ///< code -> term
  std::vector<std::vector<int32_t>> fact_codes;  ///< FactId -> sorted codes
  size_t num_multi_facts = 0;                    ///< facts with >= 2 values

  int32_t null_code() const { return static_cast<int32_t>(values.size()); }
  int domain_size() const { return static_cast<int>(values.size()) + 1; }
  bool multi_valued() const { return num_multi_facts > 0; }
};

/// Build the encoding of `attr` over `cfs`.
DimensionEncoding BuildDimensionEncoding(const AttributeStore& db, const CfsIndex& cfs,
                                         AttrId attr);

/// \brief Physical layout of the multidimensional space: a dimension order
/// (position 0 varies slowest across partitions) and per-dimension chunking.
/// A partition is one combination of chunk coordinates, holding
/// chunk[0] x ... x chunk[N-1] cells (Section 4.1's "partitions").
struct CubeLayout {
  std::vector<int> order;       ///< order[k] = dim index at position k
  std::vector<int> pos;         ///< pos[dim] = position in `order`
  std::vector<int> extent;      ///< per dim: domain size incl. null
  std::vector<int> chunk;       ///< per dim: chunk size (<= extent)
  std::vector<int> num_chunks;  ///< per dim: ceil(extent / chunk)
  uint64_t num_partitions = 1;

  size_t num_dims() const { return extent.size(); }

  /// Partition id of the given per-dim chunk coordinates.
  uint64_t EncodePartition(const std::vector<int>& chunk_coords) const;
  /// Per-dim chunk coordinates of partition `p`.
  std::vector<int> DecodePartition(uint64_t p) const;
  /// Pack per-dim value coordinates into a cell id (radix = extents, in dim
  /// index order — independent of `order`).
  uint64_t PackCell(const std::vector<int32_t>& coords) const;
  std::vector<int32_t> UnpackCell(uint64_t cell) const;
};

/// \brief One node of the lattice in the Minimum-Memory Spanning Tree.
struct MmstNode {
  uint32_t mask = 0;        ///< subset of lattice dims (bit i = dim i)
  int parent = -1;          ///< node index of the MMST parent (-1 for root)
  int dropped_dim = -1;     ///< dim index dropped going parent -> this
  std::vector<int> children;
  /// Dims (ascending) present in `mask`.
  std::vector<int> dims;
  /// Bit i set => dim i is held at FULL extent in this node's memory; clear
  /// (and in mask) => held at chunk granularity. A dim needs full extent iff
  /// some missing dim with more than one chunk varies slower than it — its
  /// region would otherwise be revisited (Section 4.1 memory model).
  uint32_t full_mask = 0;
  /// Per `dims` position: local array extent and stride.
  std::vector<int> local_extent;
  std::vector<uint64_t> stride;
  uint64_t memory_cells = 1;
};

/// \brief The lattice of 2^N nodes plus its Minimum-Memory Spanning Tree.
///
/// ArrayCube [49] picks, per node, the parent minimizing the memory needed to
/// evaluate all aggregates in one pass; the memory depends on the dimension
/// order. With N <= 4 we search all N! orders exactly and keep the cheapest
/// (sum of per-node array sizes). Parents are then chosen to minimize the
/// size of the array each child must scan during propagation.
class Mmst {
 public:
  /// `extents`: per-dim domain sizes (incl. null); `target_chunk`: desired
  /// distinct values per dimension per partition.
  static Mmst Build(const std::vector<int>& extents, int target_chunk);

  const CubeLayout& layout() const { return layout_; }
  const std::vector<MmstNode>& nodes() const { return nodes_; }
  /// Node index for a dim subset; nodes are indexed by mask.
  const MmstNode& node(uint32_t mask) const { return nodes_[mask]; }
  size_t num_dims() const { return layout_.num_dims(); }
  int root() const { return static_cast<int>(nodes_.size()) - 1; }

  /// Sum of memory_cells over all nodes (the minimized objective).
  uint64_t total_memory_cells() const;

  /// Node indexes in topological order: parents before children.
  std::vector<int> TopologicalOrder() const;

 private:
  CubeLayout layout_;
  std::vector<MmstNode> nodes_;  // indexed by mask; root = (1<<N)-1
};

/// \brief Result of Data Translation (Section 4.3): the partitioned array
/// representation, plus the exact per-root-group fact counts and the
/// stratified reservoir sample that early-stop consumes.
struct Translation {
  /// partitions[p] = (packed cell id, fact) pairs, facts of partition p.
  std::vector<std::vector<std::pair<uint64_t, FactId>>> partitions;
  /// Exact fact count per root cell (group sizes; Appendix B).
  std::unordered_map<uint64_t, uint32_t> root_group_count;
  /// Reservoir sample per root cell (present only when sampling enabled).
  std::unordered_map<uint64_t, std::vector<FactId>> reservoirs;
  /// Facts contributing to at least one cell.
  size_t num_facts_translated = 0;
  /// Combination explosion guard: combos dropped by the per-fact cap. Zero in
  /// every experiment of the paper's scale; reported, never silent.
  size_t num_dropped_combos = 0;
};

struct TranslationOptions {
  /// Cap on cells one fact may occupy (cross-product of its multi-values).
  size_t max_combos_per_fact = 4096;
  /// Reservoir capacity per root group; 0 disables sampling.
  size_t sample_capacity = 0;
  Rng* rng = nullptr;  ///< required when sample_capacity > 0
  /// Half-open fact-id range to translate; facts outside it are ignored.
  /// {0, kInvalidFact} (the default) means every fact. Sharded evaluation
  /// translates each range on its own worker; sampling is incompatible with
  /// ranges (the reservoir RNG stream is sequential across all facts).
  FactId fact_begin = 0;
  FactId fact_end = kInvalidFact;
};

/// Translate the CFS facts into the partitioned array representation. A fact
/// with no value on any dimension is skipped; missing dimensions map to the
/// null code.
Translation TranslateData(const std::vector<DimensionEncoding>& dims,
                          const CubeLayout& layout,
                          const TranslationOptions& options);

/// Merge per-shard translations of ascending, disjoint fact ranges into the
/// translation of the whole CFS — exactly. Partition vectors concatenate in
/// shard order (each shard emits its facts in ascending order, so the
/// concatenation reproduces the unsharded fact-major order bit for bit);
/// root-group counts add; the scalar counters add. Sampling reservoirs are
/// not merged (sharded translation never samples). Consumes `shards`.
Translation MergeShardTranslations(std::vector<Translation> shards);

/// \brief Generic one-pass lattice evaluation engine.
///
/// Shared by MVDCube (cells = Roaring bitmaps of facts) and by the ArrayCube
/// baseline (cells = aggregate-value accumulators): the partition loop, the
/// region bookkeeping, the parent->child propagation cascade, and the flush
/// discipline are identical; only the cell payload and the merge/emit
/// operations differ.
///
/// Protocol per partition (in layout order):
///   1. the root's cells are loaded via `load(cell, fact)`;
///   2. Flush(root): for every child whose region completed, recursively
///      flush it, then merge the parent's cells down via `merge(dst, src)`;
///      finally `emit(node_mask, coords, cell)` is called for every non-empty
///      cell of the flushed node — exactly once per group over the whole run.
///
/// `emit` receives global value coordinates (length N, null codes included);
/// the caller decides what to do with null groups (MVDCube reports only
/// null-free groups but propagates everything, Section 4.3).
template <typename Cell>
class CubeScaffold {
 public:
  using LoadFn = std::function<void(Cell*, FactId)>;
  using MergeFn = std::function<void(Cell*, const Cell&)>;
  using EmitFn =
      std::function<void(uint32_t, const std::vector<int32_t>&, const Cell&)>;

  explicit CubeScaffold(const Mmst* mmst) : mmst_(mmst) {
    states_.resize(mmst_->nodes().size());
    subtree_needed_.assign(states_.size(), true);
  }

  /// Restrict work to the nodes whose results are consumed: a node is
  /// processed iff it, or some descendant in the MMST, has `wanted` set.
  /// Early-stop-pruned and ARM-reused nodes still propagate when a live
  /// descendant needs their cells, but nodes whose whole subtree is dead are
  /// skipped entirely.
  void SetWantedNodes(const std::vector<bool>& wanted) {
    subtree_needed_ = wanted;
    subtree_needed_.resize(states_.size(), true);
    // Children have fewer mask bits than parents; iterate masks ascending so
    // every child is final before its parents aggregate it.
    for (int idx : ReverseTopological()) {
      for (int child : mmst_->nodes()[idx].children) {
        if (subtree_needed_[child]) subtree_needed_[idx] = true;
      }
    }
  }

  /// Peak cells resident after Run() (ablation / memory accounting).
  uint64_t allocated_cells() const {
    uint64_t total = 0;
    for (const auto& st : states_) total += st.cells.size();
    return total;
  }

  void Run(const Translation& data, const LoadFn& load, const MergeFn& merge,
           const EmitFn& emit) {
    const CubeLayout& layout = mmst_->layout();
    size_t n = layout.num_dims();
    if (!subtree_needed_[mmst_->root()]) return;  // nothing to compute at all
    for (uint64_t p = 0; p < layout.num_partitions; ++p) {
      if (p < data.partitions.size() && data.partitions[p].empty()) continue;
      std::vector<int> pc = layout.DecodePartition(p);
      // Load the partition into the root.
      int root_idx = mmst_->root();
      NodeState& root = states_[root_idx];
      SetRegion(root_idx, pc);
      if (p < data.partitions.size()) {
        std::vector<int32_t> coords(n);
        for (const auto& [cell_id, fact] : data.partitions[p]) {
          UnpackInto(layout, cell_id, &coords);
          uint64_t off = LocalOffset(root_idx, coords);
          if (root.cells[off].Empty()) root.occupied.push_back(off);
          load(&root.cells[off], fact);
        }
      }
      Flush(root_idx, merge, emit);
    }
    // Final cascade: parents before children so every node drains downward.
    for (int idx : mmst_->TopologicalOrder()) {
      if (idx == mmst_->root()) continue;  // root flushed per partition
      if (states_[idx].has_region) Flush(idx, merge, emit);
    }
  }

 private:
  struct NodeState {
    std::vector<Cell> cells;          ///< allocated once, reused per region
    std::vector<uint64_t> occupied;   ///< offsets of non-empty cells
    std::vector<int> region;          ///< per-dim chunk coords (-1 on full dims)
    bool has_region = false;
  };

  std::vector<int> ReverseTopological() const {
    std::vector<int> order = mmst_->TopologicalOrder();
    std::reverse(order.begin(), order.end());
    return order;
  }

  void SetRegion(int idx, const std::vector<int>& pc) {
    const MmstNode& node = mmst_->nodes()[idx];
    NodeState& st = states_[idx];
    if (!st.has_region) {
      if (st.cells.size() != node.memory_cells) {
        st.cells.assign(node.memory_cells, Cell());
      }
      st.region.assign(mmst_->layout().num_dims(), -1);
      st.has_region = true;
    }
    for (int d : node.dims) {
      if (!(node.full_mask & (1u << d))) st.region[d] = pc[d];
    }
  }

  /// Target region of node `idx` induced by parent region `parent_region`;
  /// true if it differs from the node's current region.
  bool RegionChanged(int idx, const std::vector<int>& parent_region) const {
    const MmstNode& node = mmst_->nodes()[idx];
    const NodeState& st = states_[idx];
    if (!st.has_region) return false;
    for (int d : node.dims) {
      if (node.full_mask & (1u << d)) continue;
      if (st.region[d] != parent_region[d]) return true;
    }
    return false;
  }

  uint64_t LocalOffset(int idx, const std::vector<int32_t>& coords) const {
    const MmstNode& node = mmst_->nodes()[idx];
    const NodeState& st = states_[idx];
    const CubeLayout& layout = mmst_->layout();
    uint64_t offset = 0;
    for (size_t k = 0; k < node.dims.size(); ++k) {
      int d = node.dims[k];
      int32_t comp = coords[d];
      if (!(node.full_mask & (1u << d))) {
        comp -= st.region[d] * layout.chunk[d];
      }
      offset += static_cast<uint64_t>(comp) * node.stride[k];
    }
    return offset;
  }

  /// Global coords of a local cell offset (nulls where dims are absent —
  /// absent dims are reported as null only conceptually; for emission the
  /// caller receives coords of *present* dims and null_code elsewhere).
  std::vector<int32_t> GlobalCoords(int idx, uint64_t offset) const {
    const MmstNode& node = mmst_->nodes()[idx];
    const NodeState& st = states_[idx];
    const CubeLayout& layout = mmst_->layout();
    std::vector<int32_t> coords(layout.num_dims(), -1);
    for (size_t k = 0; k < node.dims.size(); ++k) {
      int d = node.dims[k];
      int32_t comp = static_cast<int32_t>((offset / node.stride[k]) %
                                          static_cast<uint64_t>(node.local_extent[k]));
      if (!(node.full_mask & (1u << d))) {
        comp += st.region[d] * layout.chunk[d];
      }
      coords[d] = comp;
    }
    return coords;
  }

  void Flush(int idx, const MergeFn& merge, const EmitFn& emit) {
    const MmstNode& node = mmst_->nodes()[idx];
    NodeState& st = states_[idx];
    if (!st.has_region) return;

    // Decode each occupied cell's coordinates once.
    std::vector<std::vector<int32_t>> coords_of;
    coords_of.reserve(st.occupied.size());
    for (uint64_t off : st.occupied) coords_of.push_back(GlobalCoords(idx, off));

    // Propagate to children first (their regions derive from ours).
    for (int child_idx : node.children) {
      if (!subtree_needed_[child_idx]) continue;
      if (RegionChanged(child_idx, st.region)) {
        Flush(child_idx, merge, emit);
      }
      std::vector<int> pc(st.region);
      for (size_t i = 0; i < pc.size(); ++i) {
        if (pc[i] < 0) pc[i] = 0;
      }
      SetRegion(child_idx, pc);
      // Merge every non-empty cell downward.
      NodeState& child = states_[child_idx];
      for (size_t i = 0; i < st.occupied.size(); ++i) {
        uint64_t child_off = LocalOffset(child_idx, coords_of[i]);
        if (child.cells[child_off].Empty()) child.occupied.push_back(child_off);
        merge(&child.cells[child_off], st.cells[st.occupied[i]]);
      }
    }

    // Emit completed cells.
    for (size_t i = 0; i < st.occupied.size(); ++i) {
      emit(node.mask, coords_of[i], st.cells[st.occupied[i]]);
    }

    // Clear only the touched cells; keep the array allocated for reuse.
    for (uint64_t off : st.occupied) st.cells[off] = Cell();
    st.occupied.clear();
    st.has_region = false;
  }

  const Mmst* mmst_;
  std::vector<NodeState> states_;
  std::vector<bool> subtree_needed_;

  static void UnpackInto(const CubeLayout& layout, uint64_t cell,
                         std::vector<int32_t>* coords) {
    for (size_t i = layout.num_dims(); i-- > 0;) {
      (*coords)[i] = static_cast<int32_t>(cell % layout.extent[i]);
      cell /= layout.extent[i];
    }
  }
};

}  // namespace spade

#endif  // SPADE_CORE_LATTICE_H_
