#ifndef SPADE_CORE_ARRAYCUBE_H_
#define SPADE_CORE_ARRAYCUBE_H_

#include <vector>

#include "src/core/aggregate.h"
#include "src/core/lattice.h"
#include "src/core/mvdcube.h"

namespace spade {

/// \brief Classical ArrayCube (Zhao et al. [49]): the relational one-pass
/// baseline, reproduced to demonstrate Section 4.2's incorrectness analysis.
///
/// The root node is computed exactly (one accumulator update per fact x
/// dimension-value combination, i.e. per row of the relational join of
/// Figure 4). Every other node is then computed from its MMST parent's
/// *aggregated values* — cells hold (count, sum, min, max) accumulators, not
/// fact sets — so projecting away a multi-valued dimension aggregates the
/// same fact repeatedly (Lemma 1). count(*), count(M), sum(M) and avg(M) may
/// be wrong on any node missing a multi-valued dimension; min/max stay
/// correct (idempotent combine). Theorem 1: exactly the nodes containing all
/// K multi-valued dimensions — 2^(N-K) of them — are guaranteed correct.
///
/// Results are returned per (node, measure) with the same group layout as
/// the reference evaluator, so tests and the error benches can diff them.
std::vector<AggregateResult> EvaluateLatticeArrayCube(
    const AttributeStore& db, uint32_t cfs_id, const CfsIndex& cfs,
    const LatticeSpec& spec, const MvdCubeOptions& options,
    MeasureCache* measures);

}  // namespace spade

#endif  // SPADE_CORE_ARRAYCUBE_H_
