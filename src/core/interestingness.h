#ifndef SPADE_CORE_INTERESTINGNESS_H_
#define SPADE_CORE_INTERESTINGNESS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spade {

/// Interestingness functions natively supported by Spade (Section 3, step 5):
/// variance detects deviation from uniform aggregate values; skewness and
/// kurtosis detect deviation from a normal distribution.
enum class InterestingnessKind : uint8_t {
  kVariance = 0,
  kSkewness,
  kKurtosis,
};

const char* InterestingnessName(InterestingnessKind kind);

/// Unbiased sample variance (Eq. 1 of the paper). 0 for fewer than 2 values.
double Variance(const std::vector<double>& values);

/// Sample skewness m3 / sigma^3 with sigma^2 the biased variance. The paper's
/// Appendix A prints the normalizer as [H]^{2/3}; that exponent is a typo
/// (skewness must be scale-invariant), so we use the standard -3/2 form. The
/// early-stop CI machinery only needs continuous partial derivatives, which
/// hold either way. Interestingness uses |skewness| so that left and right
/// tails rank equally.
double Skewness(const std::vector<double>& values);

/// Sample excess kurtosis m4 / sigma^4 - 3 (Appendix A). Interestingness uses
/// its absolute value.
double Kurtosis(const std::vector<double>& values);

/// Apply the chosen function; skewness/kurtosis are folded to |.| so that the
/// score is a positive magnitude of deviation, per Section 2's "positive real
/// number" contract.
double Interestingness(InterestingnessKind kind, const std::vector<double>& values);

/// Gradient d h / d y_s of the interestingness function at `values`
/// (Appendix A formulas); used by the early-stop Delta-method CI.
std::vector<double> InterestingnessGradient(InterestingnessKind kind,
                                            const std::vector<double>& values);

/// \brief Streaming central moments (Welford / Pébay update). The ARM feeds
/// each group's aggregated value once and computes the interestingness score
/// in O(1) memory per aggregate.
class OnlineMoments {
 public:
  void Add(double x);

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased variance (matches Variance()).
  double variance() const;
  /// Matches Skewness().
  double skewness() const;
  /// Matches Kurtosis().
  double kurtosis() const;
  double min() const { return min_; }
  double max() const { return max_; }

  double Score(InterestingnessKind kind) const;

 private:
  size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double m3_ = 0;
  double m4_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Quantile of the standard normal distribution (Acklam's rational
/// approximation, |error| < 1.15e-9). Used for z_{1-alpha} in Section 5.
double NormalQuantile(double p);

}  // namespace spade

#endif  // SPADE_CORE_INTERESTINGNESS_H_
