#ifndef SPADE_CORE_PRESENT_H_
#define SPADE_CORE_PRESENT_H_

#include <ostream>
#include <string>

#include "src/core/spade.h"

namespace spade {

/// How an insight should be shown (Section 1: "(i) histograms (if
/// one-dimensional), (ii) heat maps (if two-dimensional), or (iii) tables
/// (for high-dimensional aggregates)").
enum class VisualizationKind : uint8_t {
  kHistogram = 0,  ///< 1 dimension
  kHeatMap,        ///< 2 dimensions
  kTable,          ///< 3+ dimensions (or none)
};

const char* VisualizationKindName(VisualizationKind kind);

/// Pick the visualization for an MDA by its dimensionality.
VisualizationKind RecommendVisualization(const AggregateKey& key);

/// Rendering knobs.
struct RenderOptions {
  size_t max_rows = 16;     ///< histogram bars / table rows shown
  size_t max_columns = 10;  ///< heat-map columns shown
  size_t bar_width = 40;    ///< histogram bar length at the maximum value
  size_t label_width = 28;
};

/// Render one insight as text: histogram, heat map (value-shaded grid), or
/// table, per RecommendVisualization. `db` resolves dimension value terms to
/// labels. Groups beyond the caps are summarized, never silently dropped.
void RenderInsight(const AttributeStore& db, const Insight& insight,
                   const RenderOptions& options, std::ostream& os);

/// Individual renderers (exposed for tests).
void RenderHistogram(const AttributeStore& db, const Insight& insight,
                     const RenderOptions& options, std::ostream& os);
void RenderHeatMap(const AttributeStore& db, const Insight& insight,
                   const RenderOptions& options, std::ostream& os);
void RenderTable(const AttributeStore& db, const Insight& insight,
                 const RenderOptions& options, std::ostream& os);

/// Human-readable label of a dimension value term.
std::string ValueLabel(const AttributeStore& db, TermId term);

}  // namespace spade

#endif  // SPADE_CORE_PRESENT_H_
