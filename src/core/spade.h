#ifndef SPADE_CORE_SPADE_H_
#define SPADE_CORE_SPADE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/arm.h"
#include "src/core/cfs.h"
#include "src/core/earlystop.h"
#include "src/core/enumeration.h"
#include "src/core/mvdcube.h"
#include "src/core/pgcube.h"
#include "src/derive/derivations.h"
#include "src/exec/cube_evaluator.h"
#include "src/exec/thread_pool.h"
#include "src/ingest/ingest.h"
#include "src/rdf/ontology.h"
#include "src/summary/summary.h"
#include "src/util/cancel.h"
#include "src/util/status.h"

namespace spade {

namespace persist {
class SnapshotReader;
}  // namespace persist

/// All knobs of the end-to-end pipeline.
struct SpadeOptions {
  CfsOptions cfs;
  EnumerationOptions enumeration;
  DerivationOptions derivation;
  MvdCubeOptions mvd;
  EarlyStopOptions earlystop;

  bool saturate = false;            ///< RDFS saturation before analysis
  bool enable_derivations = true;   ///< Section 6.2 woD/wD switch
  bool enable_earlystop = false;
  EvalAlgorithm algorithm = EvalAlgorithm::kMvdCube;
  InterestingnessKind interestingness = InterestingnessKind::kVariance;
  size_t top_k = 10;
  uint64_t seed = 42;
  /// Group tuples retained per MDA for presentation.
  size_t max_stored_groups = 64;
  /// Online-phase worker threads: 0 = hardware concurrency, 1 = serial.
  /// The same pool drives all three parallelism levels — across CFSs,
  /// across fact-id shards of one CFS, and across partition slices of one
  /// lattice computation (ParallelLatticeRun). Results (top-k insights,
  /// aggregate counts) are identical at every setting; only wall-clock
  /// changes.
  size_t num_threads = 1;
  /// Fact-id-range shards evaluating one CFS concurrently: 0 = auto (one
  /// shard per resolved worker thread), 1 = unsharded, N = exactly N.
  /// Sharding applies to the MVDCube path without early-stop; other
  /// configurations fall back to unsharded evaluation. Results are
  /// bit-identical at every shard count (see ARCHITECTURE.md).
  size_t num_shards = 0;
  /// Streaming offline build (RunOffline(TripleChunkSource*)): overlap
  /// parsing, store construction and the offline statistics pass on the
  /// same worker pool (sized by num_threads). The sequential offline phase
  /// remains the oracle; results are identical either way (byte-identical
  /// store, same statistics, same insights — see ARCHITECTURE.md "The
  /// ingest pipeline"). With `saturate` set the pipeline falls back to the
  /// sequential path (saturation rewrites the graph before tables can be
  /// built).
  IngestOptions ingest;
  /// After the offline phase completes, persist the full offline state
  /// (dictionary, triples, tables, summary, statistics, selected fact sets)
  /// to this snapshot file. Empty = no save.
  std::string save_store;
  /// Instead of ingesting, mmap this snapshot and attach to it zero-copy:
  /// RunOffline() returns in O(segments) with a state semantically identical
  /// to the one that was saved. Empty = normal ingest. Takes precedence over
  /// any input document when both are given.
  std::string load_store;
  /// Verify per-segment checksums when loading (one sequential sweep of the
  /// file). Disable only for trusted snapshots on a cold-start-critical path.
  bool verify_snapshot = true;
  /// Online-phase deadline in milliseconds; 0 = none. When it expires,
  /// RunOnline()/Explore() stop cooperatively and return what completed —
  /// always a canonical-order prefix of the full result stream — with
  /// SpadeReport/ExploreOutcome marked truncated (reason "deadline").
  double deadline_ms = 0;
  /// Resident fact-bitmap budget per CFS, in bytes; 0 = unlimited. Enforced
  /// against the same accounting as SpadeReport::peak_bitmap_bytes (which
  /// is a per-CFS maximum): a CFS whose canonical emit would exceed the
  /// budget stops admitting groups at a deterministic, config-independent
  /// cut and the run reports truncation (reason "budget").
  uint64_t max_bitmap_bytes = 0;
  /// External cancellation for RunOnline(); null = none. Cancel() from any
  /// thread makes the run stop cooperatively, same truncation contract as
  /// the deadline. (Explore() takes its token per request instead.)
  CancelToken* cancel = nullptr;
  /// Incremental maintenance: retain each CFS's online result (its full ARM
  /// shard + report deltas) across RunOnline() calls and reuse it for CFSs
  /// no delta has touched. ApplyDelta() invalidates exactly the CFSs whose
  /// member lists or supported attributes changed, so the next RunOnline()
  /// re-evaluates only those — results stay bit-identical to a full re-run
  /// (proved by the differential harness in tests/delta_test.cc). Costs one
  /// retained shard per clean CFS.
  bool enable_incremental = false;
};

/// What one ApplyDelta() batch did (the serve mode's `apply` verb reports
/// these counts verbatim; all deterministic, no timings except apply_ms).
struct DeltaReport {
  size_t num_added = 0;          ///< net-new triples
  size_t num_removed = 0;        ///< net-removed triples
  size_t noop_adds = 0;          ///< added triples that were already present
  size_t noop_retracts = 0;      ///< retractions that removed nothing
  size_t num_attrs_changed = 0;  ///< attribute tables created/modified/dropped
  size_t num_cfs = 0;            ///< fact sets selected after the delta
  size_t num_cfs_reused = 0;     ///< cache entries still valid (clean CFSs)
  double apply_ms = 0;           ///< wall-clock of the whole apply
};

/// Wall-clock per pipeline step (Figure 11's stacked bars).
struct SpadeTimings {
  // Offline.
  double saturation_ms = 0;
  double summary_ms = 0;
  double attribute_tables_ms = 0;
  double offline_stats_ms = 0;
  double derivation_ms = 0;
  // Online.
  double cfs_selection_ms = 0;
  double attribute_analysis_ms = 0;
  double enumeration_ms = 0;
  double earlystop_ms = 0;
  double evaluation_ms = 0;
  double topk_ms = 0;

  double OfflineTotal() const {
    return saturation_ms + summary_ms + attribute_tables_ms + offline_stats_ms +
           derivation_ms;
  }
  double OnlineTotal() const {
    return cfs_selection_ms + attribute_analysis_ms + enumeration_ms +
           earlystop_ms + evaluation_ms + topk_ms;
  }

  /// Online-phase wall-clock. Equals OnlineTotal() when num_threads == 1;
  /// under concurrency the per-step fields sum *work* time across workers,
  /// so wall-clock is the number that measures speedup.
  double online_wall_ms = 0;
  /// Offline-phase wall-clock (set by both RunOffline paths). Under the
  /// streaming ingest the per-step fields sum work time across workers, so
  /// this is the number the overlapped build is measured by.
  double offline_wall_ms = 0;
};

/// Dataset / run profile, the source of Table 2 and the R-observations.
struct SpadeReport {
  size_t num_triples = 0;
  size_t num_cfs = 0;
  size_t num_direct_properties = 0;  ///< #P
  DerivationReport derivations;      ///< #DP by kind
  size_t num_lattices = 0;
  size_t num_candidate_aggregates = 0;  ///< #A
  size_t num_evaluated_aggregates = 0;
  size_t num_reused_aggregates = 0;
  size_t num_pruned_aggregates = 0;
  size_t num_groups_emitted = 0;  ///< group tuples streamed into the ARM
  size_t num_threads_used = 1;    ///< resolved online-phase worker count
  size_t num_shards_used = 1;     ///< resolved within-CFS shard count
  /// Measure-fold kernel the runtime dispatcher picked for the online phase
  /// ("scalar" / "avx2" / "neon"); results are bit-identical across kernels,
  /// this reports what actually ran (--simd / SpadeOptions::mvd.simd).
  const char* simd_kernel = "scalar";
  /// Facts owned by each fact-id-range shard, summed over all sharded CFS
  /// evaluations (empty when every CFS ran unsharded).
  std::vector<size_t> shard_fact_counts;
  /// Work time spent merging per-shard partial translations (all CFSs).
  double shard_merge_ms = 0;
  /// Partition-parallel lattice computation (MVDCube path; zero elsewhere):
  /// the largest slice count any lattice ran with (bounded by num_threads
  /// and by the lattice's partition count), wall / summed-work time of the
  /// parallel runs, and the peak partial (node, group) cell count. Results
  /// are identical at every worker count; these report cost and overlap.
  size_t lattice_workers_used = 0;
  double lattice_wall_ms = 0;
  double lattice_work_ms = 0;
  uint64_t lattice_peak_partial_cells = 0;
  /// Fact-bitmap bytes of the largest lattice evaluation's emitted group
  /// cells (max over CFSs; the Section 4.3 memory model, measured — a
  /// lower bound on the true resident peak).
  uint64_t peak_bitmap_bytes = 0;
  /// Streaming-ingest profile (chunk counts, parse/overlap times).
  /// num_chunks == 0 marks a sequential offline phase; on the
  /// RunOffline(source) fallback path parse_ms still carries the
  /// source-drain time so sequential and streamed runs compare on equal
  /// footing (bench_ingest relies on this).
  IngestStats ingest;
  SpadeTimings timings;
  /// The online phase stopped early (deadline, external cancel, or bitmap
  /// budget). The committed results are a canonical-order prefix: every CFS
  /// below num_cfs_completed contributed its full group stream, possibly
  /// followed by the deterministic prefix of one budget-truncated CFS.
  bool truncated = false;
  CancelReason cancel_reason = CancelReason::kNone;
  size_t num_cfs_completed = 0;
  /// Groups refused by the bitmap budget (counted, never silently dropped).
  size_t num_groups_skipped = 0;
  /// CFSs answered from the incremental cache instead of re-evaluation
  /// (SpadeOptions::enable_incremental; always 0 otherwise).
  size_t num_cfs_reused = 0;
};

/// One returned insight: a top-k aggregate with its provenance.
struct Insight {
  Arm::Ranked ranked;
  std::string cfs_name;
  std::string description;  ///< human-readable MDA identity
  std::string sparql;       ///< SPARQL 1.1 rendering (Section 2 semantics)
};

/// One exploration request against a prepared pipeline: which fact sets to
/// analyze and which knobs to override for this request only. Unset fields
/// inherit the pipeline's SpadeOptions. This is the unit of work of the
/// serve mode (one request per client line).
struct ExploreRequest {
  /// CFS names to explore (empty = all selected fact sets).
  std::vector<std::string> cfs_names;
  std::optional<size_t> top_k;
  std::optional<InterestingnessKind> interestingness;
  std::optional<EvalAlgorithm> algorithm;
  std::optional<bool> earlystop;
  std::optional<size_t> max_dims;
  std::optional<double> min_support_ratio;
  /// Per-request deadline in ms. Set (even to 0) it overrides the pipeline
  /// deadline; 0 means "already expired" — the request returns immediately
  /// with no results and truncated = true.
  std::optional<double> deadline_ms;
  /// Per-request cancellation; null = none. Borrowed for the call duration.
  CancelToken* cancel = nullptr;
};

/// What one exploration produced.
struct ExploreOutcome {
  std::vector<Insight> insights;
  size_t num_cfs_explored = 0;
  /// Same truncation contract as SpadeReport: the insights come from a
  /// canonical-order prefix of the requested CFS sequence.
  bool truncated = false;
  CancelReason cancel_reason = CancelReason::kNone;
  size_t num_cfs_completed = 0;
};

/// \brief The Spade pipeline (Figure 2): offline graph preparation + online
/// top-k interesting-aggregate discovery.
class Spade {
 public:
  Spade(Graph* graph, SpadeOptions options);
  ~Spade();  // out-of-line: owns the forward-declared SnapshotReader

  /// Offline Processing: optional saturation, structural summary, attribute
  /// tables, offline statistics, derived property enumeration.
  Status RunOffline();

  /// Streaming Offline Processing: consume `source` through the ingest
  /// pipeline, overlapping parsing with store construction, the structural
  /// summary and the offline statistics pass (SpadeOptions::ingest). Falls
  /// back to draining the source and running the sequential RunOffline()
  /// when streaming is disabled or saturation is requested. End state is
  /// identical to parsing the same document and calling RunOffline():
  /// byte-identical store, identical statistics and downstream results.
  Status RunOffline(TripleChunkSource* source);

  /// Online Processing, steps 1-5. Requires RunOffline() first.
  Result<std::vector<Insight>> RunOnline();

  /// Step 1 (Candidate Fact Set Selection) on its own: populate fact_sets().
  /// Idempotent; a no-op when a loaded snapshot already restored the
  /// selection under matching CfsOptions. RunOnline() calls this implicitly;
  /// the serve mode calls it once up front so every request sees the same
  /// selection.
  Status PrepareFactSets();

  /// Run steps 2-5 for one request against the prepared fact sets, without
  /// touching any pipeline state: results come back in the outcome, not in
  /// report()/arm(). Thread-safe against concurrent Explore() calls (the
  /// serve mode answers requests concurrently on one shared scheduler);
  /// `scheduler` may be null for serial evaluation. Requires RunOffline()
  /// and PrepareFactSets() first.
  Result<ExploreOutcome> Explore(const ExploreRequest& request,
                                 TaskScheduler* scheduler) const;

  /// Apply one mutation batch to the live pipeline. `adds` / `retracts` are
  /// triple chunk sources (either may be null) whose terms are interned in
  /// this pipeline's graph, same contract as the ingest path. Batch
  /// semantics: final set = (current \ retracts) ∪ adds; no-ops (adding a
  /// present triple, retracting an absent one) are counted, not errors.
  ///
  /// The mutated state is staged beside the live one (new permutations, new
  /// attribute tables merged base+delta, new statistics) and committed with
  /// nothing but noexcept swaps, so any staging failure — including the
  /// `delta.apply` failpoint — leaves the pipeline exactly as it was. After
  /// the commit the structural summary and CFS selection are rebuilt and the
  /// incremental cache is revalidated: entries whose member lists and
  /// supported attributes are untouched survive (retagged to the new ids),
  /// everything else is dropped for re-evaluation. Online results/counters
  /// are reset; run RunOnline() again for fresh insights. Requires
  /// RunOffline() first; not supported with RDFS saturation.
  Status ApplyDelta(TripleChunkSource* adds, TripleChunkSource* retracts,
                    DeltaReport* out = nullptr);

  /// Reseal the accumulated state: re-intern the current triple set in
  /// canonical order into a fresh dictionary (dropping retired terms) and
  /// rebuild the store with the sequential offline pass. The result is
  /// byte-identical to a fresh sequential build of the final triple set
  /// (the compaction oracle in tests/delta_test.cc), and releases any
  /// borrowed snapshot mapping. Drops the incremental cache (id assignment
  /// may shift). Requires RunOffline() first; not with RDFS saturation.
  Status Compact();

  /// Mutation batches applied since construction.
  size_t num_deltas_applied() const { return num_deltas_applied_; }
  /// Currently valid per-CFS cache entries (incremental mode).
  size_t num_cached_cfs() const { return online_cache_.size(); }

  /// Persist the complete offline state (plus the CFS selection, when
  /// prepared) to `path`. Requires RunOffline() first. RunOffline() calls
  /// this automatically when SpadeOptions::save_store is set.
  Status SaveStore(const std::string& path) const;

  const SpadeReport& report() const { return report_; }
  const AttributeStore& store() const { return *db_; }
  AttributeStore* mutable_store() { return db_.get(); }
  /// The graph this pipeline analyzes (delta sources intern into its dict).
  Graph* mutable_graph() { return graph_; }
  const std::vector<CandidateFactSet>& fact_sets() const { return fact_sets_; }
  const Arm& arm() const { return *arm_; }
  const std::vector<AttrStats>& offline_stats() const { return offline_stats_; }
  /// The structural summary of the current graph. After ApplyDelta the
  /// rebuild is deferred (nothing on the delta path reads it unless CFS
  /// selection is summary-based); this accessor rebuilds on demand. Not safe
  /// concurrently with explores — call from mutation/setup paths only.
  const StructuralSummary& summary() const {
    EnsureSummary();
    return summary_;
  }

  /// Render an MDA as a SPARQL 1.1 aggregate query over the original graph.
  /// Derived dimensions that SPARQL cannot express as a property path
  /// (count / keyword / language) are annotated as comments.
  std::string MdaToSparql(const AggregateKey& key) const;

 private:
  /// How one CFS's evaluation ended — the input to the commit rule.
  enum class CfsRunState : uint8_t {
    kSkipped = 0,  ///< never admitted (cancelled before it started)
    kCompleted,    ///< full deterministic group stream in its ARM shard
    kTruncated,    ///< budget cut: a deterministic canonical-order prefix
    kAborted,      ///< deadline/cancel mid-flight: timing-dependent partial
  };

  /// What a batch of CFS evaluations committed.
  struct CfsBatchOutcome {
    bool truncated = false;
    CancelReason reason = CancelReason::kNone;
    size_t num_completed = 0;
  };

  /// Steps 2-4 for one CFS: attribute analysis, enumeration, evaluation into
  /// `arm` (a per-CFS shard in parallel mode, the global ARM when serial).
  /// `num_shards` is the resolved within-CFS shard count (>= 1); `opts`
  /// carries the (possibly per-request) evaluation knobs. Timing/count
  /// deltas go to `report` (merged under the caller's control). Const and
  /// state-free: safe to run concurrently for different (cfs_id, arm,
  /// report) triples.
  CfsRunState RunOnlineCfs(uint32_t cfs_id, size_t num_shards,
                           const SpadeOptions& opts, const CancelCheck* cancel,
                           Arm* arm, TaskScheduler* scheduler,
                           SpadeReport* report) const;

  /// Evaluate `ids` (ascending cfs_ids) under `cancel`, then commit shards
  /// into `arm` in order by the rule that keeps results a canonical prefix:
  /// absorb while CFSs completed; absorb a budget-truncated CFS's
  /// deterministic prefix and stop; discard aborted/skipped CFSs and stop.
  /// Exceptions from the evaluation fan-out (failpoints, bad_alloc) come
  /// back as an error Status, never propagate. Merges the absorbed CFSs'
  /// partial reports into `report`.
  Result<CfsBatchOutcome> EvaluateCfsBatch(const std::vector<uint32_t>& ids,
                                           size_t num_shards,
                                           const SpadeOptions& opts,
                                           const CancelCheck& cancel,
                                           TaskScheduler* scheduler, Arm* arm,
                                           SpadeReport* report) const;

  /// One retained per-CFS online result (SpadeOptions::enable_incremental):
  /// the CFS's full pre-absorb ARM shard plus its partial report, keyed by
  /// CFS name in online_cache_. Valid while the CFS's member list and every
  /// attribute with support in it are unchanged; ApplyDelta() revalidates
  /// and retags entries, Compact() drops them all.
  struct CfsCacheEntry {
    std::vector<TermId> members;
    Arm shard{0};
    SpadeReport partial;
  };

  /// The sequential offline pass over graph_ (summary, direct tables,
  /// statistics, derivations). RunOffline() wraps it; Compact() reruns it
  /// over the canonically rebuilt graph.
  Status BuildOfflineSequential();

  /// Drop arm_ and every online-phase report field; offline fields and the
  /// incremental cache stay. ApplyDelta()/Compact() call this so the next
  /// RunOnline() accumulates from zero.
  void ResetOnlineState();

  /// RunOnline()'s steps 2-4 with the incremental cache: evaluate only CFSs
  /// without a valid cache entry, then walk every cfs_id in ascending order,
  /// absorbing cached shards (copies) and fresh shards under the same
  /// canonical-prefix commit rule as EvaluateCfsBatch. Completed fresh CFSs
  /// are cached (pre-absorb copies) when incremental mode is on; with it
  /// off this degenerates to the plain batch evaluation.
  Result<CfsBatchOutcome> EvaluateAllCfsCached(size_t num_shards,
                                               const CancelCheck& cancel,
                                               TaskScheduler* scheduler);

  /// Turn a ranking into presentable insights (provenance + SPARQL).
  std::vector<Insight> BuildInsights(std::vector<Arm::Ranked> ranked) const;

  /// Attach the pipeline to a snapshot (SpadeOptions::load_store).
  Status LoadStore(const std::string& path);
  /// SaveStore(options_.save_store) if configured, else a no-op.
  Status MaybeSaveStore();

  /// Rebuild summary_ if a delta invalidated it (lazy: a mutation batch
  /// only pays for the O(num_triples) summary walk when something actually
  /// reads the summary afterwards).
  void EnsureSummary() const;

  Graph* graph_;
  SpadeOptions options_;
  std::unique_ptr<AttributeStore> db_;
  mutable StructuralSummary summary_;
  mutable bool summary_dirty_ = false;
  std::vector<AttrStats> offline_stats_;
  std::vector<CandidateFactSet> fact_sets_;
  std::unique_ptr<Arm> arm_;
  SpadeReport report_;
  bool offline_done_ = false;
  bool fact_sets_ready_ = false;
  /// Per-CFS online results retained for reuse (enable_incremental).
  std::map<std::string, CfsCacheEntry> online_cache_;
  size_t num_deltas_applied_ = 0;
  /// Owns the mmap behind a loaded store; must outlive graph_/db_/summary_
  /// contents, which borrow from it.
  std::unique_ptr<persist::SnapshotReader> snapshot_;
};

}  // namespace spade

#endif  // SPADE_CORE_SPADE_H_
