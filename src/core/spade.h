#ifndef SPADE_CORE_SPADE_H_
#define SPADE_CORE_SPADE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/arm.h"
#include "src/core/cfs.h"
#include "src/core/earlystop.h"
#include "src/core/enumeration.h"
#include "src/core/mvdcube.h"
#include "src/core/pgcube.h"
#include "src/derive/derivations.h"
#include "src/rdf/ontology.h"
#include "src/summary/summary.h"
#include "src/util/status.h"

namespace spade {

/// Which Aggregate Evaluation module the online pipeline uses (Section 6
/// compares them; MVDCube is the system default).
enum class EvalAlgorithm : uint8_t {
  kMvdCube = 0,
  kPgCubeStar,      ///< PostgreSQL-style cube, count(*)
  kPgCubeDistinct,  ///< PostgreSQL-style cube, count(distinct)
};

const char* EvalAlgorithmName(EvalAlgorithm algo);

/// All knobs of the end-to-end pipeline.
struct SpadeOptions {
  CfsOptions cfs;
  EnumerationOptions enumeration;
  DerivationOptions derivation;
  MvdCubeOptions mvd;
  EarlyStopOptions earlystop;

  bool saturate = false;            ///< RDFS saturation before analysis
  bool enable_derivations = true;   ///< Section 6.2 woD/wD switch
  bool enable_earlystop = false;
  EvalAlgorithm algorithm = EvalAlgorithm::kMvdCube;
  InterestingnessKind interestingness = InterestingnessKind::kVariance;
  size_t top_k = 10;
  uint64_t seed = 42;
  /// Group tuples retained per MDA for presentation.
  size_t max_stored_groups = 64;
};

/// Wall-clock per pipeline step (Figure 11's stacked bars).
struct SpadeTimings {
  // Offline.
  double saturation_ms = 0;
  double summary_ms = 0;
  double attribute_tables_ms = 0;
  double offline_stats_ms = 0;
  double derivation_ms = 0;
  // Online.
  double cfs_selection_ms = 0;
  double attribute_analysis_ms = 0;
  double enumeration_ms = 0;
  double earlystop_ms = 0;
  double evaluation_ms = 0;
  double topk_ms = 0;

  double OfflineTotal() const {
    return saturation_ms + summary_ms + attribute_tables_ms + offline_stats_ms +
           derivation_ms;
  }
  double OnlineTotal() const {
    return cfs_selection_ms + attribute_analysis_ms + enumeration_ms +
           earlystop_ms + evaluation_ms + topk_ms;
  }
};

/// Dataset / run profile, the source of Table 2 and the R-observations.
struct SpadeReport {
  size_t num_triples = 0;
  size_t num_cfs = 0;
  size_t num_direct_properties = 0;  ///< #P
  DerivationReport derivations;      ///< #DP by kind
  size_t num_lattices = 0;
  size_t num_candidate_aggregates = 0;  ///< #A
  size_t num_evaluated_aggregates = 0;
  size_t num_reused_aggregates = 0;
  size_t num_pruned_aggregates = 0;
  SpadeTimings timings;
};

/// One returned insight: a top-k aggregate with its provenance.
struct Insight {
  Arm::Ranked ranked;
  std::string cfs_name;
  std::string description;  ///< human-readable MDA identity
  std::string sparql;       ///< SPARQL 1.1 rendering (Section 2 semantics)
};

/// \brief The Spade pipeline (Figure 2): offline graph preparation + online
/// top-k interesting-aggregate discovery.
class Spade {
 public:
  Spade(Graph* graph, SpadeOptions options);

  /// Offline Processing: optional saturation, structural summary, attribute
  /// tables, offline statistics, derived property enumeration.
  Status RunOffline();

  /// Online Processing, steps 1-5. Requires RunOffline() first.
  Result<std::vector<Insight>> RunOnline();

  const SpadeReport& report() const { return report_; }
  const Database& database() const { return *db_; }
  Database* mutable_database() { return db_.get(); }
  const std::vector<CandidateFactSet>& fact_sets() const { return fact_sets_; }
  const Arm& arm() const { return *arm_; }
  const std::vector<AttrStats>& offline_stats() const { return offline_stats_; }
  const StructuralSummary& summary() const { return summary_; }

  /// Render an MDA as a SPARQL 1.1 aggregate query over the original graph.
  /// Derived dimensions that SPARQL cannot express as a property path
  /// (count / keyword / language) are annotated as comments.
  std::string MdaToSparql(const AggregateKey& key) const;

 private:
  void EvaluateCfs(uint32_t cfs_id, const CfsIndex& index,
                   const std::vector<LatticeSpec>& lattices);

  Graph* graph_;
  SpadeOptions options_;
  std::unique_ptr<Database> db_;
  StructuralSummary summary_;
  std::vector<AttrStats> offline_stats_;
  std::vector<CandidateFactSet> fact_sets_;
  std::unique_ptr<Arm> arm_;
  SpadeReport report_;
  bool offline_done_ = false;
};

}  // namespace spade

#endif  // SPADE_CORE_SPADE_H_
