/// \file spade_delta.cc
/// \brief Incremental maintenance: ApplyDelta / Compact / the online-cache
/// plumbing (see ARCHITECTURE.md "Incremental maintenance").
///
/// ApplyDelta's staged-then-commit discipline: every replacement structure
/// (triple permutations, attribute tables, statistics) is built from copies
/// beside the live state, the `delta.apply` failpoint sits between staging
/// and commit, and the commit itself is nothing but noexcept swaps — so a
/// failure anywhere leaves the pipeline exactly as it was (dictionary
/// interning excepted, which is append-only and invisible). The post-commit
/// rebuild (summary, CFS selection, cache retag) is guarded: a failure
/// there drops the caches but the store stays fully readable.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/spade.h"
#include "src/persist/snapshot.h"
#include "src/stats/attr_stats.h"
#include "src/store/delta.h"
#include "src/util/failpoint.h"
#include "src/util/timer.h"

namespace spade {

namespace {

constexpr size_t kDeltaChunkTriples = 4096;

Status DrainDelta(TripleChunkSource* source, std::vector<Triple>* out) {
  if (source == nullptr) return Status::OK();
  std::vector<Triple> chunk;
  bool done = false;
  while (!done) {
    SPADE_RETURN_NOT_OK(source->NextChunk(kDeltaChunkTriples, &chunk, &done));
    out->insert(out->end(), chunk.begin(), chunk.end());
  }
  return Status::OK();
}

/// True if any of `subjects` (ascending) appears in `members` (ascending).
bool AnySubjectIn(Span<TermId> subjects, const std::vector<TermId>& members) {
  size_t si = 0, mi = 0;
  while (si < subjects.size() && mi < members.size()) {
    if (subjects[si] < members[mi]) {
      ++si;
    } else if (members[mi] < subjects[si]) {
      ++mi;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

void Spade::ResetOnlineState() {
  arm_ = std::make_unique<Arm>(options_.max_stored_groups);
  report_.num_lattices = 0;
  report_.num_candidate_aggregates = 0;
  report_.num_evaluated_aggregates = 0;
  report_.num_reused_aggregates = 0;
  report_.num_pruned_aggregates = 0;
  report_.num_groups_emitted = 0;
  report_.num_groups_skipped = 0;
  report_.num_cfs_reused = 0;
  report_.shard_fact_counts.clear();
  report_.shard_merge_ms = 0;
  report_.lattice_workers_used = 0;
  report_.lattice_wall_ms = 0;
  report_.lattice_work_ms = 0;
  report_.lattice_peak_partial_cells = 0;
  report_.peak_bitmap_bytes = 0;
  report_.truncated = false;
  report_.cancel_reason = CancelReason::kNone;
  report_.num_cfs_completed = 0;
  SpadeTimings& t = report_.timings;
  t.cfs_selection_ms = 0;
  t.attribute_analysis_ms = 0;
  t.enumeration_ms = 0;
  t.earlystop_ms = 0;
  t.evaluation_ms = 0;
  t.topk_ms = 0;
  t.online_wall_ms = 0;
}

Status Spade::ApplyDelta(TripleChunkSource* adds, TripleChunkSource* retracts,
                         DeltaReport* out) {
  if (!offline_done_) {
    return Status::Internal("RunOffline() must complete before ApplyDelta()");
  }
  if (options_.saturate) {
    return Status::InvalidArgument(
        "ApplyDelta() is not supported with RDFS saturation");
  }
  Timer apply_timer;

  // 1. Drain the sources. Their terms intern into the live dictionary (the
  // chunk-source contract); the dictionary is append-only, so a failure
  // below leaves the extra terms unreferenced but harmless.
  std::vector<Triple> add_triples;
  std::vector<Triple> retract_triples;
  SPADE_RETURN_NOT_OK(DrainDelta(adds, &add_triples));
  SPADE_RETURN_NOT_OK(DrainDelta(retracts, &retract_triples));

  // 2. Stage the net delta and the post-delta permutations (graph untouched).
  GraphDelta staged;
  graph_->StageDelta(std::move(add_triples), std::move(retract_triples),
                     &staged);
  const size_t num_added = staged.added.size();
  const size_t num_removed = staged.removed.size();
  const size_t noop_adds = staged.noop_adds;
  const size_t noop_retracts = staged.noop_retracts;

  // 3. Per-property row deltas.
  TripleDeltaByProperty grouped =
      GroupDeltaByProperty(staged.added, staged.removed, graph_->rdf_type());

  // 4. Stage the replacement store + statistics from copies. Untouched
  // properties copy their table (a copy of a borrowed table stays borrowed —
  // cheap) and statistics; touched ones merge base+delta and recompute.
  // Names are reset before registration so collision suffixes recompute
  // exactly as a fresh sequential build over the mutated graph would.
  auto new_db = std::make_unique<AttributeStore>(graph_);
  std::vector<AttrStats> new_stats;
  DerivationReport new_derivations;
  size_t num_direct = 0;
  {
    std::unordered_map<TermId, AttrId> old_direct;
    for (AttrId a = 0; a < db_->num_attributes(); ++a) {
      const AttributeTable& t = db_->attribute(a);
      if (t.origin == AttrOrigin::kDirect) old_direct.emplace(t.property, a);
    }
    std::unordered_map<TermId, const PropertyDelta*> touched;
    for (const PropertyDelta& d : grouped.properties) {
      touched.emplace(d.property, &d);
    }
    // The post-delta property list in ascending id order — what
    // BuildDirectAttributes would iterate — read off the staged POS
    // permutation's run heads (the live graph is still pre-delta).
    std::vector<TermId> properties;
    for (const Triple& t : staged.pos) {
      if (properties.empty() || properties.back() != t.p) {
        properties.push_back(t.p);
      }
    }
    const TermId rdf_type = graph_->rdf_type();
    for (TermId p : properties) {
      if (p == rdf_type) continue;
      auto old_it = old_direct.find(p);
      auto touch_it = touched.find(p);
      AttributeTable table;
      bool reused_stats = false;
      if (touch_it == touched.end() && old_it != old_direct.end()) {
        table = db_->attribute(old_it->second);
        reused_stats = old_it->second < offline_stats_.size();
      } else {
        const AttributeTable* base = old_it == old_direct.end()
                                         ? nullptr
                                         : &db_->attribute(old_it->second);
        PropertyDelta no_delta;
        no_delta.property = p;
        const PropertyDelta& d =
            touch_it != touched.end() ? *touch_it->second : no_delta;
        table = MergeTableWithDelta(base, d);
      }
      table.name = AttributeStore::LocalName(graph_->dict().Get(p).lexical);
      table.origin = AttrOrigin::kDirect;
      table.property = p;
      const AttrId id = new_db->AddAttribute(std::move(table));
      if (reused_stats) {
        new_stats.push_back(offline_stats_[old_it->second]);
      } else {
        new_stats.push_back(ComputeAttrStats(*new_db, id));
      }
    }
    num_direct = new_db->num_attributes();
    if (options_.enable_derivations) {
      // Derivations intern counts/keywords/languages into the live (shared)
      // dictionary — append-only, so still commit-safe.
      new_derivations =
          DeriveAll(new_db.get(), new_stats, options_.derivation);
      for (AttrId a = static_cast<AttrId>(new_stats.size());
           a < new_db->num_attributes(); ++a) {
        new_stats.push_back(ComputeAttrStats(*new_db, a));
      }
    }
  }

  // 5. Changed-attribute detection by name + column comparison between the
  // live and staged stores. Exact for every origin (a derived attribute
  // whose source changed compares unequal) with no dependency tracking.
  std::unordered_map<std::string, AttrId> new_by_name;
  for (AttrId a = 0; a < new_db->num_attributes(); ++a) {
    new_by_name.emplace(new_db->attribute(a).name, a);
  }
  std::vector<AttrId> attr_map(db_->num_attributes(), kInvalidAttr);
  std::vector<const AttributeTable*> changed_tables;
  size_t num_attrs_changed = 0;
  for (AttrId a = 0; a < db_->num_attributes(); ++a) {
    const AttributeTable& old_t = db_->attribute(a);
    auto it = new_by_name.find(old_t.name);
    if (it == new_by_name.end()) {
      ++num_attrs_changed;
      changed_tables.push_back(&old_t);
      continue;
    }
    attr_map[a] = it->second;
    const AttributeTable& new_t = new_db->attribute(it->second);
    if (!SameColumns(old_t, new_t)) {
      ++num_attrs_changed;
      changed_tables.push_back(&old_t);
      changed_tables.push_back(&new_t);
    }
  }
  for (AttrId a = 0; a < new_db->num_attributes(); ++a) {
    const AttributeTable& new_t = new_db->attribute(a);
    if (!db_->FindAttribute(new_t.name).has_value()) {
      ++num_attrs_changed;
      changed_tables.push_back(&new_t);
    }
  }

  // 6. Pre-commit cache dirtiness: an entry stays clean iff no changed
  // attribute (old or new side) has a subject among its members. A clean
  // CFS's analysis covers exactly the attributes with non-zero support in
  // it, and none of those changed — so its cached group stream is what a
  // re-evaluation would produce. (This needs both stores, hence pre-commit;
  // membership changes are caught post-selection below.)
  std::set<std::string> clean;
  for (const auto& [name, entry] : online_cache_) {
    bool dirty = false;
    for (const AttributeTable* t : changed_tables) {
      if (AnySubjectIn(t->subjects(), entry.members)) {
        dirty = true;
        break;
      }
    }
    if (!dirty) clean.insert(name);
  }

  SPADE_FAILPOINT_STATUS("delta.apply");

  // --- Commit point: noexcept swaps only. -------------------------------
  graph_->CommitDelta(std::move(staged));
  db_ = std::move(new_db);
  offline_stats_ = std::move(new_stats);
  report_.num_triples = graph_->NumTriples();
  report_.num_direct_properties = num_direct;
  report_.derivations = new_derivations;
  ++num_deltas_applied_;
  ResetOnlineState();

  // 7. Post-commit rebuild: CFS selection needs the committed graph. The
  // structural summary is invalidated, not rebuilt — an O(num_triples) walk
  // the delta path defers until something reads the summary (snapshot save,
  // summary-based selection, the accessor). A failure here costs the
  // caches, never the store's readability.
  summary_dirty_ = true;
  Status post = Status::OK();
  try {
    fact_sets_ready_ = false;
    post = PrepareFactSets();
  } catch (const std::exception& e) {
    post = Status::Internal(std::string("delta post-commit rebuild failed: ") +
                            e.what());
  } catch (...) {
    post = Status::Internal("delta post-commit rebuild failed");
  }
  if (!post.ok()) {
    online_cache_.clear();
    fact_sets_ready_ = false;
    return post;
  }

  // 8. Revalidate survivors against the new selection and retag them: new
  // cfs_id, old attribute ids mapped through the by-name correspondence.
  // (An entry referencing a vanished attribute cannot be clean — a vanished
  // attribute with support in the CFS intersects its members — but the
  // remap still guards against it.)
  std::map<std::string, CfsCacheEntry> kept;
  const uint32_t num_sets = static_cast<uint32_t>(fact_sets_.size());
  for (uint32_t id = 0; id < num_sets; ++id) {
    const CandidateFactSet& set = fact_sets_[id];
    if (clean.count(set.name) == 0) continue;
    auto it = online_cache_.find(set.name);
    if (it == online_cache_.end() || it->second.members != set.members) {
      continue;
    }
    CfsCacheEntry entry = std::move(it->second);
    bool valid = true;
    entry.shard.RemapKeys([&](AggregateKey key) {
      key.cfs_id = id;
      for (AttrId& d : key.dims) {
        if (d < attr_map.size() && attr_map[d] != kInvalidAttr) {
          d = attr_map[d];
        } else {
          valid = false;
        }
      }
      if (!key.measure.is_count_star()) {
        const AttrId m = key.measure.attr;
        if (m < attr_map.size() && attr_map[m] != kInvalidAttr) {
          key.measure.attr = attr_map[m];
        } else {
          valid = false;
        }
      }
      return key;
    });
    if (valid) kept.emplace(set.name, std::move(entry));
  }
  online_cache_ = std::move(kept);

  if (out != nullptr) {
    out->num_added = num_added;
    out->num_removed = num_removed;
    out->noop_adds = noop_adds;
    out->noop_retracts = noop_retracts;
    out->num_attrs_changed = num_attrs_changed;
    out->num_cfs = fact_sets_.size();
    out->num_cfs_reused = online_cache_.size();
    out->apply_ms = apply_timer.ElapsedMillis();
  }
  return Status::OK();
}

Status Spade::Compact() {
  if (!offline_done_) {
    return Status::Internal("RunOffline() must complete before Compact()");
  }
  if (options_.saturate) {
    return Status::InvalidArgument(
        "Compact() is not supported with RDFS saturation");
  }
  // Canonical re-intern of the current triple set: the rebuilt dictionary
  // holds no retired terms and its id assignment depends only on the
  // logical triple set, so the resealed store is byte-identical to a fresh
  // sequential build of the same triples (the compaction oracle in
  // tests/delta_test.cc holds SaveStore outputs bit-for-bit equal).
  Graph canon;
  try {
    BuildCanonicalGraph(ExtractCanonicalTriples(*graph_), &canon);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("compaction failed: ") + e.what());
  }
  SPADE_FAILPOINT_STATUS("delta.compact");
  *graph_ = std::move(canon);
  // Every id the caches speak is gone (the re-intern may even shift name
  // collision suffixes), so they are dropped wholesale, unlike ApplyDelta's
  // surgical invalidation.
  online_cache_.clear();
  ResetOnlineState();
  fact_sets_.clear();
  fact_sets_ready_ = false;
  offline_done_ = false;
  Status rebuilt = Status::OK();
  try {
    rebuilt = BuildOfflineSequential();
  } catch (const std::exception& e) {
    rebuilt = Status::Internal(std::string("compaction rebuild failed: ") +
                               e.what());
  } catch (...) {
    rebuilt = Status::Internal("compaction rebuild failed");
  }
  SPADE_RETURN_NOT_OK(rebuilt);
  // The graph, store and summary are all owned rebuilds now — release any
  // snapshot mapping they used to borrow.
  snapshot_.reset();
  return PrepareFactSets();
}

}  // namespace spade
