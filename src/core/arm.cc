#include "src/core/arm.h"

#include <algorithm>

namespace spade {

bool Arm::IsEvaluated(const AggregateKey& key) const {
  return index_.count(key) > 0;
}

Arm::Handle Arm::Register(const AggregateKey& key) {
  auto [it, inserted] = index_.try_emplace(key, entries_.size());
  if (!inserted) return kInvalidHandle;
  Entry entry;
  entry.key = key;
  entries_.push_back(std::move(entry));
  return it->second;
}

Arm::Handle Arm::Find(const AggregateKey& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return kInvalidHandle;
  return it->second;
}

void Arm::AddGroup(Handle handle, std::vector<TermId> dim_values, double value) {
  Entry& entry = entries_[handle];
  entry.moments.Add(value);
  if (entry.groups.size() < max_stored_groups_) {
    entry.groups.push_back(GroupResult{std::move(dim_values), value});
  }
}

void Arm::Absorb(Arm&& shard) {
  for (Entry& entry : shard.entries_) {
    auto [it, inserted] = index_.try_emplace(entry.key, entries_.size());
    (void)it;
    if (!inserted) continue;
    entries_.push_back(std::move(entry));
  }
  shard.entries_.clear();
  shard.index_.clear();
}

std::vector<Arm::Ranked> Arm::TopK(size_t k, InterestingnessKind kind,
                                   size_t min_groups) const {
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].moments.count() < min_groups) continue;
    scored.emplace_back(entries_[i].moments.Score(kind), i);
  }
  std::sort(scored.begin(), scored.end(), [this](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return entries_[a.second].key < entries_[b.second].key;
  });
  if (scored.size() > k) scored.resize(k);

  std::vector<Ranked> out;
  out.reserve(scored.size());
  for (const auto& [score, idx] : scored) {
    Ranked r;
    r.key = entries_[idx].key;
    r.score = score;
    r.num_groups = entries_[idx].moments.count();
    r.groups = entries_[idx].groups;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace spade
