#ifndef SPADE_CORE_AGGREGATE_H_
#define SPADE_CORE_AGGREGATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sparql/ast.h"
#include "src/store/attribute_store.h"

namespace spade {

/// \brief A candidate fact set (Section 2): the RDF nodes an analysis groups
/// and aggregates. Members are sorted by TermId; dense FactIds used by the
/// cube algorithms come from CfsIndex over this member list.
struct CandidateFactSet {
  enum class Origin : uint8_t { kType, kProperty, kSummary };
  Origin origin = Origin::kType;
  std::string name;
  std::vector<TermId> members;
  /// For type-based sets: the rdf:type value (SPARQL emission binds it).
  TermId type = kInvalidTerm;
};

/// One measure of a lattice: an attribute + aggregate function. The implicit
/// "count of facts" measure (COUNT(*)) is encoded as attr == kInvalidAttr
/// with func == kCount.
struct MeasureSpec {
  AttrId attr = kInvalidAttr;
  sparql::AggFunc func = sparql::AggFunc::kCount;

  bool is_count_star() const { return attr == kInvalidAttr; }
  bool operator==(const MeasureSpec& o) const {
    return attr == o.attr && func == o.func;
  }
  bool operator<(const MeasureSpec& o) const {
    if (attr != o.attr) return attr < o.attr;
    return static_cast<int>(func) < static_cast<int>(o.func);
  }
};

/// \brief One lattice to evaluate (Section 3, step 3): N dimensions shared by
/// all 2^N nodes, and the measures computed at every node.
struct LatticeSpec {
  std::vector<AttrId> dims;  ///< sorted ascending; size N in [1, 4]
  std::vector<MeasureSpec> measures;
};

/// \brief Identity of one MDA: A = (CFS, D, M, f) from Section 2. Used by the
/// ARM to deduplicate aggregates shared between lattices ("Spade ensures that
/// the results of evaluated MDAs are reused, not recomputed").
struct AggregateKey {
  uint32_t cfs_id = 0;
  std::vector<AttrId> dims;  ///< sorted ascending
  MeasureSpec measure;

  bool operator==(const AggregateKey& o) const {
    return cfs_id == o.cfs_id && dims == o.dims && measure == o.measure;
  }
  bool operator<(const AggregateKey& o) const {
    if (cfs_id != o.cfs_id) return cfs_id < o.cfs_id;
    if (dims != o.dims) return dims < o.dims;
    return measure < o.measure;
  }
};

/// One tuple of an MDA result: dimension values (aligned with key.dims) and
/// the aggregated value.
struct GroupResult {
  std::vector<TermId> dim_values;
  double value = 0;
};

/// A fully evaluated aggregate, as produced by the reference evaluator and
/// by tests comparing algorithms.
struct AggregateResult {
  AggregateKey key;
  std::vector<GroupResult> groups;  ///< sorted by dim_values for comparison
};

/// Render an MDA's identity for humans: "sum(netWorth) of type:CEO by
/// nationality, gender".
std::string DescribeAggregate(const AttributeStore& db, const CandidateFactSet& cfs,
                              const AggregateKey& key);

}  // namespace spade

#endif  // SPADE_CORE_AGGREGATE_H_
