#include "src/core/cfs.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/sparql/ast.h"

namespace spade {

std::vector<CandidateFactSet> SelectCandidateFactSets(
    const Graph& graph, const StructuralSummary* summary,
    const CfsOptions& options) {
  std::vector<CandidateFactSet> out;
  std::set<std::vector<TermId>> seen_member_sets;

  auto add = [&](CandidateFactSet cfs) {
    std::sort(cfs.members.begin(), cfs.members.end());
    cfs.members.erase(std::unique(cfs.members.begin(), cfs.members.end()),
                      cfs.members.end());
    if (cfs.members.size() < options.min_size) return;
    if (!seen_member_sets.insert(cfs.members).second) return;
    out.push_back(std::move(cfs));
  };

  if (options.type_based) {
    for (TermId type : graph.AllTypes()) {
      CandidateFactSet cfs;
      cfs.origin = CandidateFactSet::Origin::kType;
      cfs.name = "type:" + AttributeStore::LocalName(graph.dict().Get(type).lexical);
      cfs.members = graph.NodesOfType(type);
      cfs.type = type;
      add(std::move(cfs));
    }
  }

  for (const auto& props : options.property_sets) {
    if (props.empty()) continue;
    // Nodes having every listed outgoing property: start from the subjects of
    // the first property, filter by the rest.
    CandidateFactSet cfs;
    cfs.origin = CandidateFactSet::Origin::kProperty;
    std::string name = "props:";
    for (TermId p : props) {
      if (name.size() > 6) name += "+";
      name += AttributeStore::LocalName(graph.dict().Get(p).lexical);
    }
    cfs.name = name;
    std::vector<TermId> candidates;
    graph.Match(kInvalidTerm, props[0], kInvalidTerm, [&](const Triple& t) {
      candidates.push_back(t.s);
    });
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (TermId node : candidates) {
      bool has_all = true;
      for (size_t i = 1; i < props.size() && has_all; ++i) {
        has_all = !graph.Objects(node, props[i]).empty();
      }
      if (has_all) cfs.members.push_back(node);
    }
    add(std::move(cfs));
  }

  if (options.summary_based && summary != nullptr) {
    for (size_t c = 0; c < summary->num_classes(); ++c) {
      CandidateFactSet cfs;
      cfs.origin = CandidateFactSet::Origin::kSummary;
      cfs.name = "summary:" + std::to_string(c);
      cfs.members = summary->ClassMembers(c).ToVector();
      add(std::move(cfs));
    }
  }

  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.members.size() > b.members.size();
  });
  if (out.size() > options.max_sets) out.resize(options.max_sets);
  return out;
}

}  // namespace spade
