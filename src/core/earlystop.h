#ifndef SPADE_CORE_EARLYSTOP_H_
#define SPADE_CORE_EARLYSTOP_H_

#include <map>
#include <set>
#include <vector>

#include "src/core/arm.h"
#include "src/core/lattice.h"
#include "src/core/mvdcube.h"
#include "src/stats/attr_stats.h"

namespace spade {

/// Early-stop configuration (Section 5; defaults are the paper's empirical
/// choice: "a sample size of 60 with 2 batches").
struct EarlyStopOptions {
  size_t sample_size = 60;  ///< reservoir capacity per aggregate group
  size_t num_batches = 2;
  double alpha = 0.05;  ///< CI level 1 - alpha
  size_t top_k = 10;
  InterestingnessKind kind = InterestingnessKind::kVariance;
};

/// A point estimate of an MDA's interestingness with its large-sample CI.
struct ScoreEstimate {
  double score = 0;
  double lower = 0;
  double upper = 0;
  size_t num_groups = 0;
};

/// Outcome of the pruning pass over one CFS's lattices.
struct EarlyStopResult {
  std::set<AggregateKey> pruned;
  size_t num_candidates = 0;
  double time_ms = 0;
};

/// Estimate the interestingness CI from per-group samples (exposed for the
/// statistical tests). `group_values[g]` holds the sampled per-fact measure
/// values of group g, `group_scale[g]` the factor applied to the group's
/// sample mean (1 for avg, the estimated group size c_g for sum/count —
/// Appendix B). The CI is the Delta-method interval
///   epsilon = z_{1-alpha/2} * sqrt( sum_g Var(Y_g) * (dh/dy_g)^2 ),
/// with Var(Y_g) = scale_g^2 * sigma_g^2 / r_g (Section 5.2 / Theorem 2).
/// `r_limit` restricts each group to its first r_limit sampled values (the
/// batched refinement of Section 5.1 without copying the sample arrays).
ScoreEstimate EstimateScore(InterestingnessKind kind,
                            const std::vector<std::vector<double>>& group_values,
                            const std::vector<double>& group_scale, double alpha,
                            size_t r_limit = static_cast<size_t>(-1));

/// \brief The early-stop planner: consumes the stratified reservoir samples
/// produced during Data Translation (Section 5.3), propagates them down each
/// lattice, estimates every candidate MDA's interestingness in batches, and
/// prunes the MDAs whose CI upper bound falls below the running k-th best
/// lower bound.
class EarlyStopPlanner {
 public:
  EarlyStopPlanner(const AttributeStore* db, uint32_t cfs_id, const CfsIndex* cfs,
                   const std::vector<AttrStats>* offline,
                   const EarlyStopOptions& options)
      : db_(db), cfs_id_(cfs_id), cfs_(cfs), offline_(offline), options_(options) {}

  /// Register one lattice, with the translation that already carries its
  /// reservoirs (TranslationOptions::sample_capacity must have been set).
  void AddLattice(const LatticeSpec& spec,
                  const std::vector<DimensionEncoding>& encodings,
                  const CubeLayout& layout, const Translation& translation,
                  MeasureCache* measures);

  /// Run the batched pruning. `arm` supplies already-evaluated aggregates
  /// whose exact scores tighten the k-th best threshold.
  EarlyStopResult Plan(const Arm& arm);

 private:
  struct Group {
    double est_count = 0;          ///< c_g (root-exact, overestimated below root)
    std::vector<FactId> sample;    ///< deduplicated union of root reservoirs
    /// Dimension value codes on the node's own dims (null codes included);
    /// used to project the group into the child tables.
    std::vector<int32_t> coords;
    /// Groups with a null coordinate feed descendants but are not estimated
    /// (reported MDA results never contain null groups).
    bool has_null = false;
  };
  struct Candidate {
    AggregateKey key;
    MeasureSpec measure;
    const MeasureVector* mv = nullptr;  ///< null for count(*)
    double attr_min = 0, attr_max = 0;  ///< offline bounds (min/max CIs)
    size_t group_table = 0;             ///< index into group_tables_
    bool alive = true;
    ScoreEstimate estimate;
    /// Per-group sampled values (full sample; batches take prefixes) and the
    /// group scale factors, extracted once in Plan().
    std::vector<std::vector<double>> values;
    std::vector<double> scales;
  };

  const AttributeStore* db_;
  uint32_t cfs_id_;
  const CfsIndex* cfs_;
  const std::vector<AttrStats>* offline_;
  EarlyStopOptions options_;
  /// One group table per (lattice, node mask): the node's groups.
  std::vector<std::vector<Group>> group_tables_;
  std::vector<Candidate> candidates_;
};

}  // namespace spade

#endif  // SPADE_CORE_EARLYSTOP_H_
