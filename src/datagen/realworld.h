#ifndef SPADE_DATAGEN_REALWORLD_H_
#define SPADE_DATAGEN_REALWORLD_H_

#include <memory>
#include <vector>

#include "src/rdf/graph.h"

namespace spade {

/// The six real-world graphs of Table 2. The original dumps are not
/// redistributable / reachable offline, so each is simulated by a
/// deterministic generator reproducing the structural characteristics that
/// drive every experiment (see DESIGN.md, substitution table):
///   - Airline: originally relational; one fact type, flat single-valued
///     numeric tuples, no links => no derivations apply (Experiment 1's
///     negative control);
///   - CEOs: heterogeneous 2-hop WikiData neighbourhood; many types,
///     multi-valued nationality / occupation / company, political-connection
///     and company links (path derivations), money and age measures;
///   - DBLP: one publication type, year as the only direct dimension, long
///     titles (keyword derivations), multi-valued authors;
///   - Foodista: recipes/foods/techniques, multi-valued ingredients, text
///     descriptions in several languages (language derivation);
///   - NASA: launches / spacecraft / launch sites / agencies, spacecraft
///     mass & discipline, spacecraft->agency paths (Figure 6b's insight);
///   - Nobel: laureates / prizes / universities, multi-valued affiliations,
///     category x year structure, motivation text.
enum class RealDataset : uint8_t {
  kAirline = 0,
  kCeos,
  kDblp,
  kFoodista,
  kNasa,
  kNobel,
};

const char* RealDatasetName(RealDataset dataset);
std::vector<RealDataset> AllRealDatasets();

/// Generate a dataset. `scale` multiplies entity counts (1.0 reproduces the
/// Table 2 profile for the small graphs; DBLP/Airline are generated at a
/// documented fraction of their original size — see EXPERIMENTS.md).
std::unique_ptr<Graph> GenerateRealDataset(RealDataset dataset, uint64_t seed,
                                           double scale = 1.0);

std::unique_ptr<Graph> GenerateAirline(uint64_t seed, double scale = 1.0);
std::unique_ptr<Graph> GenerateCeos(uint64_t seed, double scale = 1.0);
std::unique_ptr<Graph> GenerateDblp(uint64_t seed, double scale = 1.0);
std::unique_ptr<Graph> GenerateFoodista(uint64_t seed, double scale = 1.0);
std::unique_ptr<Graph> GenerateNasa(uint64_t seed, double scale = 1.0);
std::unique_ptr<Graph> GenerateNobel(uint64_t seed, double scale = 1.0);

}  // namespace spade

#endif  // SPADE_DATAGEN_REALWORLD_H_
