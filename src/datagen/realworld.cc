#include "src/datagen/realworld.h"

#include <string>
#include <vector>

#include "src/util/rng.h"

namespace spade {

namespace {

constexpr const char* kNs = "http://data.spade/";

// Small vocabulary pools used across generators.
const std::vector<std::string>& Countries() {
  static const std::vector<std::string> v = {
      "Angola",  "Brazil", "France",  "Lebanon", "Nigeria", "Germany",
      "Japan",   "USA",    "UK",      "Italy",   "Spain",   "India",
      "China",   "Russia", "Canada",  "Mexico",  "Egypt",   "Kenya",
      "Sweden",  "Norway", "Poland",  "Greece",  "Chile",   "Peru",
  };
  return v;
}

const std::vector<std::string>& Areas() {
  static const std::vector<std::string> v = {
      "Automotive", "Diamond",   "Manufacturer", "NaturalGas", "Banking",
      "Software",   "Retail",    "Telecom",      "Energy",     "Airline",
      "Media",      "Chemicals", "Pharma",       "Insurance",
  };
  return v;
}

const std::vector<std::string>& Words() {
  static const std::vector<std::string> v = {
      "petroleum", "production", "global",   "holding",  "diversified",
      "pipeline",  "investment", "mining",   "renewable", "logistics",
      "satellite", "research",   "medical",  "consumer",  "electronics",
      "precision", "industrial", "maritime", "security",  "financial",
  };
  return v;
}

std::string Iri(const std::string& tail) { return std::string(kNs) + tail; }

// Build a pseudo-sentence of `n` words from the pool, optionally salted with
// French/Spanish stop words so language detection has work to do.
std::string MakeText(Rng* rng, size_t n, int lang /*0=en,1=fr,2=es*/) {
  static const std::vector<std::string> en = {"the", "of", "and", "is", "in"};
  static const std::vector<std::string> fr = {"le", "la", "des", "est", "dans"};
  static const std::vector<std::string> es = {"el", "la", "los", "es", "en"};
  const std::vector<std::string>& glue = lang == 1 ? fr : lang == 2 ? es : en;
  std::string text;
  for (size_t i = 0; i < n; ++i) {
    if (!text.empty()) text += " ";
    if (i % 2 == 1) {
      text += glue[rng->Uniform(glue.size())];
    } else {
      text += Words()[rng->Uniform(Words().size())];
    }
  }
  return text;
}

}  // namespace

const char* RealDatasetName(RealDataset dataset) {
  switch (dataset) {
    case RealDataset::kAirline:
      return "Airline";
    case RealDataset::kCeos:
      return "CEOs";
    case RealDataset::kDblp:
      return "DBLP";
    case RealDataset::kFoodista:
      return "Foodista";
    case RealDataset::kNasa:
      return "NASA";
    case RealDataset::kNobel:
      return "Nobel";
  }
  return "?";
}

std::vector<RealDataset> AllRealDatasets() {
  return {RealDataset::kAirline, RealDataset::kCeos,  RealDataset::kDblp,
          RealDataset::kFoodista, RealDataset::kNasa, RealDataset::kNobel};
}

std::unique_ptr<Graph> GenerateRealDataset(RealDataset dataset, uint64_t seed,
                                           double scale) {
  switch (dataset) {
    case RealDataset::kAirline:
      return GenerateAirline(seed, scale);
    case RealDataset::kCeos:
      return GenerateCeos(seed, scale);
    case RealDataset::kDblp:
      return GenerateDblp(seed, scale);
    case RealDataset::kFoodista:
      return GenerateFoodista(seed, scale);
    case RealDataset::kNasa:
      return GenerateNasa(seed, scale);
    case RealDataset::kNobel:
      return GenerateNobel(seed, scale);
  }
  return nullptr;
}

std::unique_ptr<Graph> GenerateAirline(uint64_t seed, double scale) {
  // Originally a relational flight-delay table: one CF per tuple, a fixed
  // set of single-valued mostly-numeric properties, no inter-tuple links.
  auto graph = std::make_unique<Graph>();
  Dictionary& dict = graph->dict();
  Rng rng(seed);
  size_t n = static_cast<size_t>(8000 * scale);

  TermId type = dict.InternIri(Iri("airline/Flight"));
  const std::vector<std::string> carriers = {"AA", "DL", "UA", "WN", "B6",
                                             "AS", "NK", "F9", "HA", "G4"};
  const std::vector<std::string> airports = {"ATL", "LAX", "ORD", "DFW", "DEN",
                                             "JFK", "SFO", "SEA", "MIA", "BOS",
                                             "PHX", "IAH", "MSP", "DTW", "CLT"};
  std::vector<TermId> props;
  const std::vector<std::string> numeric_props = {
      "depDelay",  "arrDelay",     "carrierDelay", "weatherDelay",
      "nasDelay",  "lateAircraft", "taxiIn",       "taxiOut",
      "airTime",   "distance",     "actualElapsed", "crsElapsed"};
  for (size_t f = 0; f < n; ++f) {
    std::string id = "airline/flight/" + std::to_string(f);
    TermId fact = dict.InternIri(Iri(id));
    graph->Add(fact, graph->rdf_type(), type);
    auto addp = [&](const std::string& p, TermId o) {
      graph->Add(fact, dict.InternIri(Iri("airline/" + p)), o);
    };
    addp("carrier", dict.InternString(carriers[rng.Zipf(carriers.size(), 1.0)]));
    addp("origin", dict.InternString(airports[rng.Zipf(airports.size(), 0.8)]));
    addp("dest", dict.InternString(airports[rng.Zipf(airports.size(), 0.8)]));
    addp("month", dict.InternInteger(static_cast<int64_t>(rng.Uniform(12) + 1)));
    addp("dayOfWeek", dict.InternInteger(static_cast<int64_t>(rng.Uniform(7) + 1)));
    addp("cancelled", dict.InternInteger(rng.Bernoulli(0.02) ? 1 : 0));
    for (const auto& p : numeric_props) {
      double base = 20.0 + 15.0 * rng.NextGaussian();
      if (rng.Bernoulli(0.03)) base += 180.0;  // big-delay outliers
      addp(p, dict.InternDouble(base < 0 ? 0 : base));
    }
  }
  graph->Freeze();
  return graph;
}

std::unique_ptr<Graph> GenerateCeos(uint64_t seed, double scale) {
  // WikiData 2-hop neighbourhood of CEOs: heterogeneous, many types, heavy
  // multi-valued properties (nationality, occupation, company), links that
  // feed path derivations, money/age measures (Figures 1 and 6a).
  auto graph = std::make_unique<Graph>();
  Dictionary& dict = graph->dict();
  Rng rng(seed);

  size_t num_ceos = static_cast<size_t>(900 * scale);
  size_t num_companies = static_cast<size_t>(1600 * scale);
  size_t num_politicians = static_cast<size_t>(450 * scale);

  TermId t_ceo = dict.InternIri(Iri("ceos/CEO"));
  TermId t_company = dict.InternIri(Iri("ceos/Company"));
  TermId t_politician = dict.InternIri(Iri("ceos/Politician"));
  TermId t_person = dict.InternIri(Iri("ceos/Person"));
  TermId t_country = dict.InternIri(Iri("ceos/Country"));
  TermId t_city = dict.InternIri(Iri("ceos/City"));

  auto prop = [&](const std::string& p) { return dict.InternIri(Iri("ceos/" + p)); };
  TermId p_nationality = prop("nationality");
  TermId p_gender = prop("gender");
  TermId p_age = prop("age");
  TermId p_networth = prop("netWorth");
  TermId p_company = prop("company");
  TermId p_occupation = prop("occupation");
  TermId p_polconn = prop("politicalConnection");
  TermId p_country_of_origin = prop("countryOfOrigin");
  TermId p_area = prop("area");
  TermId p_hq = prop("headquarters");
  TermId p_desc = prop("description");
  TermId p_role = prop("role");
  TermId p_name = prop("name");
  TermId p_revenue = prop("revenue");
  TermId p_employees = prop("employees");
  TermId p_located_in = prop("locatedIn");
  TermId p_population = prop("population");

  const std::vector<std::string> occupations = {
      "Entrepreneur", "Philanthropist", "Shareholder", "Investor",
      "Engineer",     "Economist",      "Lawyer",      "Banker"};
  const std::vector<std::string> roles = {"President", "Minister", "Senator",
                                          "Governor", "Mayor"};

  // Countries and cities (2-hop leaf entities, each typed).
  std::vector<TermId> countries, cities;
  for (size_t i = 0; i < Countries().size(); ++i) {
    TermId c = dict.InternIri(Iri("ceos/country/" + Countries()[i]));
    graph->Add(c, graph->rdf_type(), t_country);
    graph->Add(c, p_name, dict.InternString(Countries()[i]));
    graph->Add(c, p_population,
               dict.InternInteger(static_cast<int64_t>(1e6 + rng.Uniform(2e8))));
    countries.push_back(c);
  }
  for (size_t i = 0; i < 40; ++i) {
    TermId c = dict.InternIri(Iri("ceos/city/" + std::to_string(i)));
    graph->Add(c, graph->rdf_type(), t_city);
    graph->Add(c, p_name, dict.InternString("City" + std::to_string(i)));
    graph->Add(c, p_located_in, countries[rng.Uniform(countries.size())]);
    cities.push_back(c);
  }

  // Companies.
  std::vector<TermId> companies;
  for (size_t i = 0; i < num_companies; ++i) {
    TermId c = dict.InternIri(Iri("ceos/company/" + std::to_string(i)));
    graph->Add(c, graph->rdf_type(), t_company);
    graph->Add(c, p_name, dict.InternString("Company" + std::to_string(i)));
    // Multi-valued area (1-3 values, Zipf-skewed).
    size_t num_areas = 1 + rng.Uniform(3);
    for (size_t a = 0; a < num_areas; ++a) {
      graph->Add(c, p_area,
                 dict.InternString(Areas()[rng.Zipf(Areas().size(), 1.1)]));
    }
    graph->Add(c, p_hq, cities[rng.Uniform(cities.size())]);
    if (rng.Bernoulli(0.7)) {
      graph->Add(c, p_desc,
                 dict.Intern(Term::Literal(MakeText(&rng, 8, 0))));
    }
    if (rng.Bernoulli(0.8)) {
      graph->Add(c, p_revenue,
                 dict.InternDouble(1e6 * (1.0 + rng.Uniform(5000))));
    }
    if (rng.Bernoulli(0.8)) {
      graph->Add(c, p_employees,
                 dict.InternInteger(static_cast<int64_t>(10 + rng.Uniform(200000))));
    }
    companies.push_back(c);
  }

  // Politicians.
  std::vector<TermId> politicians;
  for (size_t i = 0; i < num_politicians; ++i) {
    TermId pol = dict.InternIri(Iri("ceos/politician/" + std::to_string(i)));
    graph->Add(pol, graph->rdf_type(), t_politician);
    graph->Add(pol, graph->rdf_type(), t_person);
    graph->Add(pol, p_name, dict.InternString("Politician" + std::to_string(i)));
    graph->Add(pol, p_role, dict.InternString(roles[rng.Zipf(roles.size(), 1.0)]));
    graph->Add(pol, p_nationality, countries[rng.Zipf(countries.size(), 0.9)]);
    politicians.push_back(pol);
  }

  // CEOs: the headline fact set.
  for (size_t i = 0; i < num_ceos; ++i) {
    TermId ceo = dict.InternIri(Iri("ceos/ceo/" + std::to_string(i)));
    graph->Add(ceo, graph->rdf_type(), t_ceo);
    graph->Add(ceo, graph->rdf_type(), t_person);
    graph->Add(ceo, p_name, dict.InternString("Ceo" + std::to_string(i)));
    // Multi-valued nationality (Ghosn has four).
    size_t num_nat = rng.Bernoulli(0.25) ? 1 + rng.Uniform(3) : 1;
    for (size_t k = 0; k < num_nat; ++k) {
      graph->Add(ceo, p_nationality,
                 countries[rng.Zipf(countries.size(), 0.8)]);
    }
    if (rng.Bernoulli(0.85)) {  // some CEOs miss gender (Figure 4)
      graph->Add(ceo, p_gender,
                 dict.InternString(rng.Bernoulli(0.23) ? "Female" : "Male"));
    }
    if (rng.Bernoulli(0.8)) {
      graph->Add(ceo, p_age,
                 dict.InternInteger(static_cast<int64_t>(
                     35 + rng.Uniform(45))));
    }
    if (rng.Bernoulli(0.7)) {
      double nw = 1e7 * (1 + rng.Uniform(500));
      if (rng.Bernoulli(0.02)) nw *= 40;  // dos Santos-like outliers
      graph->Add(ceo, p_networth, dict.InternDouble(nw));
    }
    if (rng.Bernoulli(0.5)) {
      graph->Add(ceo, p_country_of_origin,
                 countries[rng.Zipf(countries.size(), 0.8)]);
    }
    size_t num_occ = 1 + rng.Uniform(3);
    for (size_t k = 0; k < num_occ; ++k) {
      graph->Add(ceo, p_occupation,
                 dict.InternString(occupations[rng.Zipf(occupations.size(), 1.0)]));
    }
    size_t num_comp = 1 + rng.Uniform(3);  // multi-valued company links
    for (size_t k = 0; k < num_comp; ++k) {
      graph->Add(ceo, p_company, companies[rng.Uniform(companies.size())]);
    }
    if (rng.Bernoulli(0.35)) {
      graph->Add(ceo, p_polconn, politicians[rng.Uniform(politicians.size())]);
    }
  }
  graph->Freeze();
  return graph;
}

std::unique_ptr<Graph> GenerateDblp(uint64_t seed, double scale) {
  // Publications: one type, year as the only low-cardinality direct
  // dimension; titles carry keywords; authors are multi-valued references.
  auto graph = std::make_unique<Graph>();
  Dictionary& dict = graph->dict();
  Rng rng(seed);
  size_t num_pubs = static_cast<size_t>(6000 * scale);
  size_t num_authors = static_cast<size_t>(2000 * scale);

  TermId t_pub = dict.InternIri(Iri("dblp/Publication"));
  auto prop = [&](const std::string& p) { return dict.InternIri(Iri("dblp/" + p)); };
  TermId p_year = prop("year");
  TermId p_title = prop("title");
  TermId p_author = prop("author");
  TermId p_pages = prop("numPages");
  TermId p_venue = prop("venue");
  TermId p_citations = prop("citations");
  TermId p_name = prop("name");

  std::vector<TermId> authors;
  for (size_t i = 0; i < num_authors; ++i) {
    TermId a = dict.InternIri(Iri("dblp/author/" + std::to_string(i)));
    graph->Add(a, p_name, dict.InternString("Author" + std::to_string(i)));
    authors.push_back(a);
  }
  const std::vector<std::string> venues = {"SIGMOD", "VLDB", "ICDE", "EDBT",
                                           "CIKM",   "KDD",  "WWW",  "ISWC"};
  for (size_t i = 0; i < num_pubs; ++i) {
    TermId pub = dict.InternIri(Iri("dblp/pub/" + std::to_string(i)));
    graph->Add(pub, graph->rdf_type(), t_pub);
    graph->Add(pub, p_year,
               dict.InternInteger(static_cast<int64_t>(1990 + rng.Uniform(32))));
    graph->Add(pub, p_title, dict.Intern(Term::Literal(MakeText(&rng, 9, 0))));
    graph->Add(pub, p_venue, dict.InternString(venues[rng.Zipf(venues.size(), 0.9)]));
    graph->Add(pub, p_pages,
               dict.InternInteger(static_cast<int64_t>(4 + rng.Uniform(26))));
    graph->Add(pub, p_citations,
               dict.InternInteger(static_cast<int64_t>(rng.Zipf(500, 1.3))));
    size_t num_auth = 1 + rng.Uniform(5);  // multi-valued
    for (size_t k = 0; k < num_auth; ++k) {
      graph->Add(pub, p_author, authors[rng.Uniform(authors.size())]);
    }
  }
  graph->Freeze();
  return graph;
}

std::unique_ptr<Graph> GenerateFoodista(uint64_t seed, double scale) {
  // Recipes / foods / techniques; multilingual descriptions; multi-valued
  // ingredient links. Few aggregates exist without derivations (Table 2).
  auto graph = std::make_unique<Graph>();
  Dictionary& dict = graph->dict();
  Rng rng(seed);
  size_t num_recipes = static_cast<size_t>(2500 * scale);
  size_t num_foods = static_cast<size_t>(800 * scale);
  size_t num_techniques = static_cast<size_t>(60 * scale);

  TermId t_recipe = dict.InternIri(Iri("foodista/Recipe"));
  TermId t_food = dict.InternIri(Iri("foodista/Food"));
  TermId t_technique = dict.InternIri(Iri("foodista/Technique"));
  auto prop = [&](const std::string& p) {
    return dict.InternIri(Iri("foodista/" + p));
  };
  TermId p_ingredient = prop("ingredient");
  TermId p_technique = prop("usesTechnique");
  TermId p_desc = prop("description");
  TermId p_title = prop("title");
  TermId p_category = prop("category");
  TermId p_name = prop("name");

  const std::vector<std::string> categories = {"Dessert", "Main", "Starter",
                                               "Drink", "Salad", "Soup"};
  std::vector<TermId> foods, techniques;
  for (size_t i = 0; i < num_foods; ++i) {
    TermId f = dict.InternIri(Iri("foodista/food/" + std::to_string(i)));
    graph->Add(f, graph->rdf_type(), t_food);
    graph->Add(f, p_name, dict.InternString("Food" + std::to_string(i)));
    if (rng.Bernoulli(0.4)) {
      graph->Add(f, p_category,
                 dict.InternString(categories[rng.Uniform(categories.size())]));
    }
    foods.push_back(f);
  }
  for (size_t i = 0; i < num_techniques; ++i) {
    TermId t = dict.InternIri(Iri("foodista/technique/" + std::to_string(i)));
    graph->Add(t, graph->rdf_type(), t_technique);
    graph->Add(t, p_name, dict.InternString("Technique" + std::to_string(i)));
    techniques.push_back(t);
  }
  for (size_t i = 0; i < num_recipes; ++i) {
    TermId r = dict.InternIri(Iri("foodista/recipe/" + std::to_string(i)));
    graph->Add(r, graph->rdf_type(), t_recipe);
    graph->Add(r, p_title, dict.InternString("Recipe" + std::to_string(i)));
    int lang = static_cast<int>(rng.Uniform(3));
    graph->Add(r, p_desc, dict.Intern(Term::Literal(MakeText(&rng, 12, lang))));
    size_t num_ing = 2 + rng.Uniform(8);  // heavily multi-valued
    for (size_t k = 0; k < num_ing; ++k) {
      graph->Add(r, p_ingredient, foods[rng.Zipf(foods.size(), 0.7)]);
    }
    if (rng.Bernoulli(0.6)) {
      graph->Add(r, p_technique, techniques[rng.Uniform(techniques.size())]);
    }
  }
  graph->Freeze();
  return graph;
}

std::unique_ptr<Graph> GenerateNasa(uint64_t seed, double scale) {
  // Launches / spacecraft / sites / agencies (Figures 6b, 6c).
  auto graph = std::make_unique<Graph>();
  Dictionary& dict = graph->dict();
  Rng rng(seed);
  size_t num_launches = static_cast<size_t>(1800 * scale);
  size_t num_spacecraft = static_cast<size_t>(1200 * scale);

  TermId t_launch = dict.InternIri(Iri("nasa/Launch"));
  TermId t_spacecraft = dict.InternIri(Iri("nasa/Spacecraft"));
  TermId t_site = dict.InternIri(Iri("nasa/LaunchSite"));
  TermId t_agency = dict.InternIri(Iri("nasa/Agency"));
  auto prop = [&](const std::string& p) { return dict.InternIri(Iri("nasa/" + p)); };
  TermId p_site = prop("launchSite");
  TermId p_spacecraft = prop("spacecraft");
  TermId p_agency = prop("agency");
  TermId p_mass = prop("mass");
  TermId p_discipline = prop("discipline");
  TermId p_year = prop("launchYear");
  TermId p_name = prop("name");
  TermId p_country = prop("country");

  const std::vector<std::string> sites = {
      "Plesetsk",      "Bajkonur", "CapeCanaveral", "Vandenberg",
      "Kourou",        "Tanegashima", "Jiuquan",    "Sriharikota",
      "WallopsIsland", "Svobodny"};
  const std::vector<std::string> agencies = {"USSR", "USA",   "ESA",
                                             "JAXA", "CNSA",  "ISRO"};
  const std::vector<std::string> disciplines = {
      "HumanCrew",   "Microgravity", "LifeSciences", "Repair",
      "Astronomy",   "EarthScience", "Communication", "Navigation",
      "Surveillance"};

  std::vector<TermId> site_nodes, agency_nodes;
  for (const auto& s : sites) {
    TermId node = dict.InternIri(Iri("nasa/site/" + s));
    graph->Add(node, graph->rdf_type(), t_site);
    graph->Add(node, p_name, dict.InternString(s));
    site_nodes.push_back(node);
  }
  for (const auto& a : agencies) {
    TermId node = dict.InternIri(Iri("nasa/agency/" + a));
    graph->Add(node, graph->rdf_type(), t_agency);
    graph->Add(node, p_name, dict.InternString(a));
    graph->Add(node, p_country, dict.InternString(a));
    agency_nodes.push_back(node);
  }

  std::vector<TermId> craft_nodes;
  for (size_t i = 0; i < num_spacecraft; ++i) {
    TermId c = dict.InternIri(Iri("nasa/spacecraft/" + std::to_string(i)));
    graph->Add(c, graph->rdf_type(), t_spacecraft);
    graph->Add(c, p_name, dict.InternString("Craft" + std::to_string(i)));
    graph->Add(c, p_agency, agency_nodes[rng.Zipf(agency_nodes.size(), 0.9)]);
    size_t num_disc = 1 + rng.Uniform(2);  // multi-valued discipline
    double mass = 500 + 400 * rng.NextGaussian();
    for (size_t k = 0; k < num_disc; ++k) {
      size_t d = rng.Zipf(disciplines.size(), 0.8);
      graph->Add(c, p_discipline, dict.InternString(disciplines[d]));
      if (d < 4) mass += 4000;  // crewed/serviced craft are much heavier
    }
    graph->Add(c, p_mass, dict.InternDouble(mass < 50 ? 50 : mass));
    craft_nodes.push_back(c);
  }
  for (size_t i = 0; i < num_launches; ++i) {
    TermId l = dict.InternIri(Iri("nasa/launch/" + std::to_string(i)));
    graph->Add(l, graph->rdf_type(), t_launch);
    // USSR launches concentrate on Plesetsk/Bajkonur (Figure 6b).
    TermId craft = craft_nodes[rng.Uniform(craft_nodes.size())];
    graph->Add(l, p_spacecraft, craft);
    bool ussr = !graph->Objects(craft, p_agency).empty() &&
                graph->Objects(craft, p_agency)[0] == agency_nodes[0];
    size_t site =
        ussr ? rng.Uniform(2) : 2 + rng.Zipf(site_nodes.size() - 2, 1.0);
    graph->Add(l, p_site, site_nodes[site]);
    graph->Add(l, p_year,
               dict.InternInteger(static_cast<int64_t>(1957 + rng.Uniform(60))));
  }
  graph->Freeze();
  return graph;
}

std::unique_ptr<Graph> GenerateNobel(uint64_t seed, double scale) {
  // Laureates / prizes / universities; multi-valued affiliations.
  auto graph = std::make_unique<Graph>();
  Dictionary& dict = graph->dict();
  Rng rng(seed);
  size_t num_laureates = static_cast<size_t>(950 * scale);
  size_t num_universities = static_cast<size_t>(300 * scale);

  TermId t_laureate = dict.InternIri(Iri("nobel/Laureate"));
  TermId t_prize = dict.InternIri(Iri("nobel/Prize"));
  TermId t_university = dict.InternIri(Iri("nobel/University"));
  auto prop = [&](const std::string& p) { return dict.InternIri(Iri("nobel/" + p)); };
  TermId p_category = prop("category");
  TermId p_year = prop("year");
  TermId p_share = prop("share");
  TermId p_affiliation = prop("affiliation");
  TermId p_born = prop("bornIn");
  TermId p_gender = prop("gender");
  TermId p_motivation = prop("motivation");
  TermId p_prize = prop("prize");
  TermId p_name = prop("name");
  TermId p_country = prop("country");
  TermId p_age_at_award = prop("ageAtAward");

  const std::vector<std::string> categories = {"Physics",  "Chemistry",
                                               "Medicine", "Literature",
                                               "Peace",    "Economics"};
  std::vector<TermId> universities;
  for (size_t i = 0; i < num_universities; ++i) {
    TermId u = dict.InternIri(Iri("nobel/university/" + std::to_string(i)));
    graph->Add(u, graph->rdf_type(), t_university);
    graph->Add(u, p_name, dict.InternString("University" + std::to_string(i)));
    graph->Add(u, p_country,
               dict.InternString(Countries()[rng.Zipf(Countries().size(), 0.9)]));
    universities.push_back(u);
  }
  for (size_t i = 0; i < num_laureates; ++i) {
    TermId person = dict.InternIri(Iri("nobel/laureate/" + std::to_string(i)));
    graph->Add(person, graph->rdf_type(), t_laureate);
    graph->Add(person, p_name, dict.InternString("Laureate" + std::to_string(i)));
    graph->Add(person, p_gender,
               dict.InternString(rng.Bernoulli(0.07) ? "Female" : "Male"));
    graph->Add(person, p_born,
               dict.InternString(Countries()[rng.Zipf(Countries().size(), 0.8)]));
    size_t num_aff = 1 + rng.Uniform(3);  // multi-valued affiliation
    for (size_t k = 0; k < num_aff; ++k) {
      graph->Add(person, p_affiliation,
                 universities[rng.Zipf(universities.size(), 0.9)]);
    }
    // Prize node per laureate (share may split it).
    TermId prize = dict.InternIri(Iri("nobel/prize/" + std::to_string(i)));
    graph->Add(prize, graph->rdf_type(), t_prize);
    size_t cat = rng.Uniform(categories.size());
    graph->Add(prize, p_category, dict.InternString(categories[cat]));
    graph->Add(prize, p_year,
               dict.InternInteger(static_cast<int64_t>(1901 + rng.Uniform(120))));
    graph->Add(prize, p_share,
               dict.InternInteger(static_cast<int64_t>(1 + rng.Uniform(4))));
    graph->Add(person, p_prize, prize);
    graph->Add(person, p_age_at_award,
               dict.InternInteger(static_cast<int64_t>(
                   cat == 4 ? 50 + rng.Uniform(40)  // peace skews older
                            : 35 + rng.Uniform(45))));
    graph->Add(person, p_motivation,
               dict.Intern(Term::Literal(MakeText(&rng, 10, 0))));
  }
  graph->Freeze();
  return graph;
}

}  // namespace spade
