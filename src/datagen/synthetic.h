#ifndef SPADE_DATAGEN_SYNTHETIC_H_
#define SPADE_DATAGEN_SYNTHETIC_H_

#include <memory>
#include <vector>

#include "src/rdf/graph.h"

namespace spade {

/// \brief The paper's synthetic benchmark (Section 6.5).
///
/// A single CFS of |CFS| facts (all typed `bench:Fact`), N dimensions and M
/// numeric measures, all property values numeric. Each dimension D_i takes at
/// most `dim_cardinality[i]` distinct values (always <= 100 in the paper so
/// dimensions pass the enumeration rules). Facts are placed in the
/// multidimensional space with a sparsity parameter s in [0,1] as in Agarwal
/// et al. [1]: s controls how much of the space is populated — the fact's
/// dimension values are drawn from a contiguous sub-range covering a fraction
/// (1-s) of each dimension's domain, so higher sparsity concentrates facts in
/// fewer distinct groups.
///
/// To keep PGCube correct on these graphs (as the paper requires for the
/// scalability study), every fact has exactly one value per dimension and
/// per measure unless `multi_valued_dims` is set, in which case each fact
/// gains a second value on the flagged dimensions with probability
/// `multi_value_prob` — used by the correctness experiments.
struct SyntheticOptions {
  size_t num_facts = 10000;
  std::vector<int> dim_cardinality = {100, 100, 100};
  size_t num_measures = 3;
  double sparsity = 0.1;
  uint64_t seed = 42;
  /// Dimensions (by index) that become multi-valued.
  std::vector<size_t> multi_valued_dims;
  double multi_value_prob = 0.3;
  /// Fraction of facts missing each dimension/measure value (heterogeneity).
  double missing_prob = 0.0;
  /// Facts are spread round-robin over this many rdf:type values
  /// ("bench:Fact", "bench:Fact1", ...), yielding one CFS per type. The
  /// paper's scalability study uses 1; the parallel-scaling bench raises it
  /// to model multi-tenant workloads (many independent fact sets).
  size_t num_fact_types = 1;
};

/// Generate the benchmark graph.
std::unique_ptr<Graph> GenerateSynthetic(const SyntheticOptions& options);

/// IRIs used by the generator (stable for tests/benches).
namespace synth {
inline constexpr const char* kFactType = "http://bench.spade/Fact";
inline constexpr const char* kDimPrefix = "http://bench.spade/dim";
inline constexpr const char* kMeasurePrefix = "http://bench.spade/measure";
}  // namespace synth

}  // namespace spade

#endif  // SPADE_DATAGEN_SYNTHETIC_H_
