#include "src/datagen/synthetic.h"

#include <algorithm>
#include <string>

#include "src/util/rng.h"

namespace spade {

std::unique_ptr<Graph> GenerateSynthetic(const SyntheticOptions& options) {
  auto graph = std::make_unique<Graph>();
  Dictionary& dict = graph->dict();
  Rng rng(options.seed);

  size_t n = options.dim_cardinality.size();
  size_t num_types = std::max<size_t>(1, options.num_fact_types);
  std::vector<TermId> types(num_types);
  for (size_t t = 0; t < num_types; ++t) {
    types[t] = dict.InternIri(t == 0 ? std::string(synth::kFactType)
                                     : synth::kFactType + std::to_string(t));
  }
  std::vector<TermId> dim_props(n);
  for (size_t d = 0; d < n; ++d) {
    dim_props[d] = dict.InternIri(synth::kDimPrefix + std::to_string(d));
  }
  std::vector<TermId> measure_props(options.num_measures);
  for (size_t m = 0; m < options.num_measures; ++m) {
    measure_props[m] = dict.InternIri(synth::kMeasurePrefix + std::to_string(m));
  }

  // Sparsity: draw dimension values from a contiguous prefix of the domain
  // covering a (1 - s) fraction (at least 2 values so grouping stays
  // meaningful) — fewer populated combinations at higher s.
  std::vector<int> effective(n);
  for (size_t d = 0; d < n; ++d) {
    effective[d] = std::max(
        2, static_cast<int>((1.0 - options.sparsity) *
                            static_cast<double>(options.dim_cardinality[d])));
  }

  // Pre-intern dimension value literals (dense small domains).
  std::vector<std::vector<TermId>> dim_values(n);
  for (size_t d = 0; d < n; ++d) {
    dim_values[d].resize(static_cast<size_t>(options.dim_cardinality[d]));
    for (int v = 0; v < options.dim_cardinality[d]; ++v) {
      dim_values[d][static_cast<size_t>(v)] = dict.InternInteger(v);
    }
  }

  bool multi[32] = {false};
  for (size_t d : options.multi_valued_dims) {
    if (d < 32) multi[d] = true;
  }

  for (size_t f = 0; f < options.num_facts; ++f) {
    TermId fact =
        dict.InternIri("http://bench.spade/fact/" + std::to_string(f));
    graph->Add(fact, graph->rdf_type(), types[f % num_types]);
    for (size_t d = 0; d < n; ++d) {
      if (options.missing_prob > 0 && rng.Bernoulli(options.missing_prob)) {
        continue;
      }
      int v = static_cast<int>(rng.Uniform(static_cast<uint64_t>(effective[d])));
      graph->Add(fact, dim_props[d], dim_values[d][static_cast<size_t>(v)]);
      if (d < 32 && multi[d] && rng.Bernoulli(options.multi_value_prob)) {
        int v2 = static_cast<int>(
            rng.Uniform(static_cast<uint64_t>(effective[d])));
        if (v2 != v) {
          graph->Add(fact, dim_props[d], dim_values[d][static_cast<size_t>(v2)]);
        }
      }
    }
    for (size_t m = 0; m < options.num_measures; ++m) {
      if (options.missing_prob > 0 && rng.Bernoulli(options.missing_prob)) {
        continue;
      }
      // Measures: normal around a per-measure center so variance-based
      // interestingness has structure to find.
      double value = 100.0 * static_cast<double>(m + 1) +
                     10.0 * rng.NextGaussian() +
                     (rng.Bernoulli(0.01) ? 500.0 : 0.0);  // rare outliers
      graph->Add(fact, measure_props[m],
                 dict.InternDouble(value));
    }
  }
  graph->Freeze();
  return graph;
}

}  // namespace spade
