#include "src/util/status.h"

namespace spade {

std::string Status::ToString() const {
  if (ok()) return "OK";
  const char* name = "UNKNOWN";
  switch (code_) {
    case Code::kOk:
      name = "OK";
      break;
    case Code::kInvalidArgument:
      name = "INVALID_ARGUMENT";
      break;
    case Code::kParseError:
      name = "PARSE_ERROR";
      break;
    case Code::kNotFound:
      name = "NOT_FOUND";
      break;
    case Code::kOutOfRange:
      name = "OUT_OF_RANGE";
      break;
    case Code::kInternal:
      name = "INTERNAL";
      break;
    case Code::kCancelled:
      name = "CANCELLED";
      break;
    case Code::kDeadlineExceeded:
      name = "DEADLINE_EXCEEDED";
      break;
    case Code::kResourceExhausted:
      name = "RESOURCE_EXHAUSTED";
      break;
  }
  std::string out = name;
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace spade
