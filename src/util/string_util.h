#ifndef SPADE_UTIL_STRING_UTIL_H_
#define SPADE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace spade {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Remove leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lower-casing (sufficient for keyword/language derivation, which only
/// inspects ASCII letters).
std::string ToLower(std::string_view s);

/// Parse a whole string as int64; returns false on any non-numeric content.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parse a whole string as double; returns false on any non-numeric content.
bool ParseDouble(std::string_view s, double* out);

/// Render a double with `digits` significant decimal places, trimming
/// trailing zeros ("1.50" -> "1.5", "2.00" -> "2").
std::string FormatDouble(double v, int digits = 3);

/// Join items with `sep`.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace spade

#endif  // SPADE_UTIL_STRING_UTIL_H_
