#ifndef SPADE_UTIL_TABLE_PRINTER_H_
#define SPADE_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace spade {

/// \brief Fixed-width ASCII table writer.
///
/// Each benchmark binary regenerates one of the paper's tables/figures as a
/// plain-text table on stdout; this helper keeps their output uniform.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Render with a header rule and column padding.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spade

#endif  // SPADE_UTIL_TABLE_PRINTER_H_
