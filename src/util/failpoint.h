#ifndef SPADE_UTIL_FAILPOINT_H_
#define SPADE_UTIL_FAILPOINT_H_

/// \file failpoint.h
/// \brief Named fault-injection points, compiled out unless SPADE_FAILPOINTS.
///
/// A failpoint is a named place in the code where a test (or the
/// SPADE_FAILPOINT environment variable) can inject a failure:
///
///     SPADE_FAILPOINT=persist.save.segment=error:3,exec.taskgroup.task=throw
///
/// Spec grammar, per comma-separated entry:
///
///     name=off                 disarm
///     name=error[:N|:P]        return Status::Internal / throw FailpointError
///     name=throw[:N|:P]        throw FailpointError
///     name=oom[:N|:P]          throw std::bad_alloc
///     name=kill[:N|:P]         raise(SIGKILL) — for torn-write crash tests
///
/// The optional argument selects WHICH hit fires: an integer N fires on
/// exactly the Nth evaluation (1-based); a float P in (0,1) written with a
/// '.' fires each hit with probability P; absent means every hit.
///
/// Cost model: when the build has failpoints compiled in, an unarmed site is
/// one function-local-static init (first pass only) plus one relaxed atomic
/// load per evaluation. When compiled out (Release without
/// -DSPADE_FAILPOINTS=ON), both macros expand to nothing — CI asserts via
/// `nm` that no spade::fail:: symbol reaches the release CLI binary.
///
/// Two macros, matching the two failure idioms in the codebase:
///
///  - SPADE_FAILPOINT(name): for void / exception contexts. `error` and
///    `throw` both throw fail::FailpointError (callers at module boundaries
///    convert exceptions to Status); `oom` throws std::bad_alloc.
///  - SPADE_FAILPOINT_STATUS(name): for functions returning Status. `error`
///    does `return Status::Internal(...)`; other actions behave as above.

#include <string>
#include <vector>

#include "src/util/status.h"

namespace spade {
namespace fail {

/// Thrown by `error`/`throw` failpoint actions in exception contexts.
class FailpointError : public std::exception {
 public:
  explicit FailpointError(std::string name)
      : what_("failpoint '" + name + "' fired") {}
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  std::string what_;
};

/// True when this build can inject faults at all.
bool Enabled();

/// Parses and applies a spec string (same grammar as the env variable).
/// In a build without failpoints this returns InvalidArgument for any
/// non-empty spec, so tests can skip cleanly.
Status Configure(const std::string& spec);

/// Disarms every failpoint and resets hit counters.
void Reset();

/// Names of all failpoint sites evaluated so far in this process, sorted.
/// (A site registers on first execution of its code path.)
std::vector<std::string> KnownNames();

/// The canonical list of every failpoint site compiled into the codebase,
/// sorted. Unlike KnownNames() this does not depend on which code paths have
/// executed — it backs `spade_cli --list-failpoints`. Kept in sync by
/// FailpointTest.AllSiteNamesCoversEveryRegisteredSite.
std::vector<std::string> AllSiteNames();

}  // namespace fail
}  // namespace spade

#if defined(SPADE_FAILPOINTS)

#include <atomic>

namespace spade {
namespace fail {

enum class Action : uint8_t { kOff = 0, kError, kThrow, kOom, kKill };

struct Failpoint {
  std::string name;
  std::atomic<bool> armed{false};
  std::atomic<uint8_t> action{0};
  // one_shot_hit > 0: fire on exactly that evaluation (1-based).
  std::atomic<uint64_t> one_shot_hit{0};
  std::atomic<uint64_t> hits{0};
  // probability permille in [0,1000]; 1000 = always.
  std::atomic<uint32_t> permille{1000};
};

/// Returns the registry entry for `name`, creating it on first call. Also
/// applies any pending SPADE_FAILPOINT env spec naming this site.
Failpoint* Register(const char* name);

/// Slow path taken only when the site is armed: counts the hit, decides
/// whether to fire, and performs the action (throw / raise). For `error`
/// under SPADE_FAILPOINT_STATUS the caller returns a Status instead; this
/// overload reports the decision.
enum class Fired : uint8_t { kNo = 0, kError, kThrew };
Fired Evaluate(Failpoint* fp, bool status_context);

}  // namespace fail
}  // namespace spade

#define SPADE_FAILPOINT(name)                                             \
  do {                                                                    \
    static ::spade::fail::Failpoint* _spade_fp =                          \
        ::spade::fail::Register(name);                                    \
    if (_spade_fp->armed.load(std::memory_order_relaxed)) {               \
      ::spade::fail::Evaluate(_spade_fp, /*status_context=*/false);       \
    }                                                                     \
  } while (false)

#define SPADE_FAILPOINT_STATUS(name)                                      \
  do {                                                                    \
    static ::spade::fail::Failpoint* _spade_fp =                          \
        ::spade::fail::Register(name);                                    \
    if (_spade_fp->armed.load(std::memory_order_relaxed)) {               \
      if (::spade::fail::Evaluate(_spade_fp, /*status_context=*/true) ==  \
          ::spade::fail::Fired::kError) {                                 \
        return ::spade::Status::Internal("failpoint '" +                  \
                                         std::string(name) + "' fired");  \
      }                                                                   \
    }                                                                     \
  } while (false)

#else  // !SPADE_FAILPOINTS

#define SPADE_FAILPOINT(name) \
  do {                        \
  } while (false)
#define SPADE_FAILPOINT_STATUS(name) \
  do {                               \
  } while (false)

#endif  // SPADE_FAILPOINTS

#endif  // SPADE_UTIL_FAILPOINT_H_
