#include "src/util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace spade {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is unreliable across stdlib versions; strtod on
  // a bounded copy keeps the whole-string check.
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  return s;
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace spade
