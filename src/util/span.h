#ifndef SPADE_UTIL_SPAN_H_
#define SPADE_UTIL_SPAN_H_

#include <cstddef>
#include <vector>

namespace spade {

/// \brief Minimal non-owning view over a contiguous array (C++17 stand-in for
/// std::span<const T>). The columnar store hands these out from its scan
/// accessors so hot loops never allocate.
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}
  Span(const std::vector<T>& v) : data_(v.data()), size_(v.size()) {}  // NOLINT
  // A span over a temporary would dangle at the end of the statement.
  Span(const std::vector<T>&&) = delete;

  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const T& operator[](size_t i) const { return data_[i]; }
  constexpr const T& front() const { return data_[0]; }
  constexpr const T& back() const { return data_[size_ - 1]; }
  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }

  constexpr Span<T> subspan(size_t offset, size_t count) const {
    return Span<T>(data_ + offset, count);
  }

  std::vector<T> ToVector() const { return std::vector<T>(begin(), end()); }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace spade

#endif  // SPADE_UTIL_SPAN_H_
