#include "src/util/table_printer.h"

#include <algorithm>

namespace spade {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  os << '|';
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace spade
