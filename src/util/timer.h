#ifndef SPADE_UTIL_TIMER_H_
#define SPADE_UTIL_TIMER_H_

#include <chrono>

namespace spade {

/// \brief Wall-clock stopwatch used by the pipeline instrumentation and the
/// benchmark harnesses (Figures 9, 11, 12; Table 4 report milliseconds).
///
/// Concurrency: a Timer instance is not shared between threads; each worker
/// times its own task with a local Timer and the per-task durations are
/// merged after the parallel region. Summed fields therefore measure
/// aggregate *work* time — wall-clock of a parallel phase must be taken by
/// a single Timer owned by the coordinating thread (see
/// SpadeTimings::online_wall_ms).
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spade

#endif  // SPADE_UTIL_TIMER_H_
