#include "src/util/cancel.h"

namespace spade {

const char* CancelReasonName(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kCancelled:
      return "cancelled";
    case CancelReason::kDeadline:
      return "deadline";
    case CancelReason::kBudget:
      return "budget";
  }
  return "unknown";
}

}  // namespace spade
