#ifndef SPADE_UTIL_CANCEL_H_
#define SPADE_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace spade {

/// \brief Why a run stopped early.
///
/// The distinction matters for determinism (see CancelCheck below): a budget
/// trip is itself deterministic and the run keeps draining work already
/// admitted, whereas a deadline or external cancel aborts in-flight work at
/// the next check point.
enum class CancelReason : uint8_t {
  kNone = 0,
  kCancelled,  // external CancelToken::Cancel()
  kDeadline,   // Deadline expired
  kBudget,     // resource budget exceeded (max_bitmap_bytes)
};

const char* CancelReasonName(CancelReason reason);

/// \brief Shared cancellation flag, first-cancel-wins.
///
/// One token is observed by every worker of a run; Cancel() may be called
/// from any thread (including a worker that trips a budget). The flag only
/// ever transitions kNone -> some reason, so a relaxed load on the hot path
/// is safe: a late observation merely delays the stop by one check interval.
class CancelToken {
 public:
  CancelToken() : state_(static_cast<uint8_t>(CancelReason::kNone)) {}

  /// Requests cancellation. The first caller's reason sticks.
  void Cancel(CancelReason reason = CancelReason::kCancelled) {
    uint8_t expected = static_cast<uint8_t>(CancelReason::kNone);
    state_.compare_exchange_strong(expected, static_cast<uint8_t>(reason),
                                   std::memory_order_relaxed);
  }

  bool cancelled() const {
    return state_.load(std::memory_order_relaxed) !=
           static_cast<uint8_t>(CancelReason::kNone);
  }

  CancelReason reason() const {
    return static_cast<CancelReason>(state_.load(std::memory_order_relaxed));
  }

  /// Re-arms a token for reuse (serve mode keeps one per request slot).
  void Reset() {
    state_.store(static_cast<uint8_t>(CancelReason::kNone),
                 std::memory_order_relaxed);
  }

 private:
  std::atomic<uint8_t> state_;
};

/// \brief A wall-clock cutoff on the steady clock.
///
/// Deadline::Never() never expires; Deadline::After(0) is already expired
/// (callers use that to probe "return immediately with empty results").
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  static Deadline Never() { return Deadline(Clock::time_point::max()); }
  static Deadline After(double ms) {
    if (ms <= 0) return Deadline(Clock::time_point::min());
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(ms)));
  }

  bool never() const { return when_ == Clock::time_point::max(); }
  bool expired() const { return !never() && Clock::now() >= when_; }

 private:
  explicit Deadline(Clock::time_point when) : when_(when) {}
  Clock::time_point when_;
};

/// \brief The pair of predicates a run consults while working.
///
/// Two predicates, not one, because they serve different determinism needs:
///
///  - AbortNow(): "stop touching in-flight work". True only for deadline
///    expiry or an external cancel — the cases where timeliness beats
///    completeness. Hot loops check this; the resulting output prefix is
///    config-dependent in *length* but always a canonical-order prefix.
///  - SkipNewWork(): "admit nothing new". True for ANY cancellation,
///    including a budget trip. Budget trips deliberately do NOT abort
///    in-flight sibling work: the already-admitted fact sets drain to
///    completion, so the committed prefix is identical at every
///    thread/shard count (the trip point itself is computed in the
///    single-threaded canonical emit over bit-identical cells).
///
/// A default-constructed CancelCheck never fires; passing nullptr for the
/// token with a Never deadline likewise costs a couple of predictable
/// branches per check.
class CancelCheck {
 public:
  CancelCheck() : token_(nullptr), deadline_(Deadline::Never()) {}
  CancelCheck(CancelToken* token, Deadline deadline)
      : token_(token), deadline_(deadline) {}

  /// True when in-flight work should stop at the next check point
  /// (deadline expired or externally cancelled — never for budget).
  bool AbortNow() const {
    if (token_ != nullptr) {
      CancelReason r = token_->reason();
      if (r == CancelReason::kCancelled || r == CancelReason::kDeadline) {
        return true;
      }
    }
    if (deadline_.expired()) {
      // Latch the reason so every other worker (and the final report) sees
      // a consistent kDeadline without re-reading the clock.
      if (token_ != nullptr) token_->Cancel(CancelReason::kDeadline);
      return true;
    }
    return false;
  }

  /// True when no *new* work should be admitted (any reason, incl. budget).
  bool SkipNewWork() const {
    if (token_ != nullptr && token_->cancelled()) return true;
    return AbortNow();
  }

  CancelReason reason() const {
    if (token_ != nullptr && token_->cancelled()) return token_->reason();
    if (deadline_.expired()) return CancelReason::kDeadline;
    return CancelReason::kNone;
  }

  CancelToken* token() const { return token_; }

 private:
  CancelToken* token_;
  Deadline deadline_;
};

}  // namespace spade

#endif  // SPADE_UTIL_CANCEL_H_
