#ifndef SPADE_UTIL_STATUS_H_
#define SPADE_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace spade {

/// \brief Outcome of an operation that can fail, in the Arrow/RocksDB idiom.
///
/// Spade never throws across module boundaries: fallible operations return a
/// Status (or a Result<T>, below) and callers decide how to react. A default
/// constructed Status is OK.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kParseError,
    kNotFound,
    kOutOfRange,
    kInternal,
    kCancelled,
    kDeadlineExceeded,
    kResourceExhausted,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" rendering, "OK" for success.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// \brief A value or an error Status.
///
/// Result<T> carries either a successfully produced T or the Status that
/// explains why no T exists. Access to the value of a failed Result aborts,
/// so callers must test ok() first (tests do so via ASSERT macros).
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {} // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagate a non-OK Status to the caller.
#define SPADE_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::spade::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace spade

#endif  // SPADE_UTIL_STATUS_H_
