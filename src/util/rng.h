#ifndef SPADE_UTIL_RNG_H_
#define SPADE_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace spade {

/// \brief Deterministic 64-bit PRNG (SplitMix64).
///
/// Every randomized component in Spade (data generators, reservoir sampling,
/// synthetic benchmarks) takes an explicit Rng seeded by the caller so that
/// runs, tests, and benchmarks are exactly reproducible. SplitMix64 passes
/// BigCrush, needs a single uint64 of state, and cannot accidentally be
/// platform-dependent the way std::default_random_engine can.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box–Muller (one value per call; simple and exact
  /// enough for data generation).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Zipf-distributed integer in [0, n) with exponent alpha, by inverse CDF
  /// over precomputed-free rejection-less linear scan for small n, used by
  /// the real-graph simulators to skew value popularity.
  uint64_t Zipf(uint64_t n, double alpha) {
    // Normalization constant computed on the fly; n is small (< 10^4) in all
    // generator uses so the scan cost is negligible.
    double h = 0;
    for (uint64_t i = 1; i <= n; ++i) h += 1.0 / std::pow(static_cast<double>(i), alpha);
    double u = NextDouble() * h;
    double acc = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i), alpha);
      if (acc >= u) return i - 1;
    }
    return n - 1;
  }

 private:
  uint64_t state_;
};

}  // namespace spade

#endif  // SPADE_UTIL_RNG_H_
