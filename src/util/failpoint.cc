#include "src/util/failpoint.h"

#if defined(SPADE_FAILPOINTS)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <new>

#include "src/util/string_util.h"

namespace spade {
namespace fail {
namespace {

struct PendingConfig {
  Action action = Action::kOff;
  uint64_t one_shot_hit = 0;
  uint32_t permille = 1000;
};

struct Registry {
  std::mutex mu;
  // Failpoints live for the process lifetime; sites hold raw pointers into
  // this map from their function-local statics.
  std::map<std::string, std::unique_ptr<Failpoint>> points;
  // Specs naming sites whose code path has not executed yet; applied at
  // Register() time.
  std::map<std::string, PendingConfig> pending;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: outlives static dtor order
  return *r;
}

void Apply(Failpoint* fp, const PendingConfig& cfg) {
  fp->action.store(static_cast<uint8_t>(cfg.action), std::memory_order_relaxed);
  fp->one_shot_hit.store(cfg.one_shot_hit, std::memory_order_relaxed);
  fp->permille.store(cfg.permille, std::memory_order_relaxed);
  fp->hits.store(0, std::memory_order_relaxed);
  // armed last: a racing Evaluate sees a fully configured point.
  fp->armed.store(cfg.action != Action::kOff, std::memory_order_relaxed);
}

Status ParseEntry(const std::string& entry, std::string* name,
                  PendingConfig* cfg) {
  size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("failpoint spec entry needs name=action: '" +
                                   entry + "'");
  }
  *name = entry.substr(0, eq);
  std::string action = entry.substr(eq + 1);
  std::string arg;
  size_t colon = action.find(':');
  if (colon != std::string::npos) {
    arg = action.substr(colon + 1);
    action = action.substr(0, colon);
  }
  *cfg = PendingConfig();
  if (action == "off") {
    cfg->action = Action::kOff;
  } else if (action == "error") {
    cfg->action = Action::kError;
  } else if (action == "throw") {
    cfg->action = Action::kThrow;
  } else if (action == "oom") {
    cfg->action = Action::kOom;
  } else if (action == "kill") {
    cfg->action = Action::kKill;
  } else {
    return Status::InvalidArgument("unknown failpoint action '" + action +
                                   "' in '" + entry + "'");
  }
  if (!arg.empty()) {
    if (arg.find('.') != std::string::npos) {
      double p;
      if (!ParseDouble(arg, &p) || p < 0 || p > 1) {
        return Status::InvalidArgument("failpoint probability must be in "
                                       "[0, 1]: '" + entry + "'");
      }
      cfg->permille = static_cast<uint32_t>(p * 1000.0);
    } else {
      int64_t n;
      if (!ParseInt64(arg, &n) || n <= 0) {
        return Status::InvalidArgument("failpoint hit number must be a "
                                       "positive integer: '" + entry + "'");
      }
      cfg->one_shot_hit = static_cast<uint64_t>(n);
    }
  }
  return Status::OK();
}

Status ConfigureLocked(Registry& reg, const std::string& spec) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    std::string entry = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!entry.empty()) {
      std::string name;
      PendingConfig cfg;
      SPADE_RETURN_NOT_OK(ParseEntry(entry, &name, &cfg));
      auto it = reg.points.find(name);
      if (it != reg.points.end()) {
        Apply(it->second.get(), cfg);
      } else {
        reg.pending[name] = cfg;
      }
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return Status::OK();
}

void ParseEnvOnce(Registry& reg) {
  static std::once_flag flag;
  std::call_once(flag, [&reg] {
    const char* env = std::getenv("SPADE_FAILPOINT");
    if (env == nullptr || env[0] == '\0') return;
    Status st = ConfigureLocked(reg, env);
    if (!st.ok()) {
      // A typo'd env spec should be loud, not silently inert.
      std::fprintf(stderr, "spade: bad SPADE_FAILPOINT: %s\n",
                   st.ToString().c_str());
    }
  });
}

}  // namespace

Failpoint* Register(const char* name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  ParseEnvOnce(reg);
  auto it = reg.points.find(name);
  if (it == reg.points.end()) {
    auto fp = std::make_unique<Failpoint>();
    fp->name = name;
    it = reg.points.emplace(name, std::move(fp)).first;
    auto pending = reg.pending.find(name);
    if (pending != reg.pending.end()) {
      Apply(it->second.get(), pending->second);
      reg.pending.erase(pending);
    }
  }
  return it->second.get();
}

Fired Evaluate(Failpoint* fp, bool status_context) {
  uint64_t hit = fp->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t one_shot = fp->one_shot_hit.load(std::memory_order_relaxed);
  if (one_shot > 0 && hit != one_shot) return Fired::kNo;
  uint32_t permille = fp->permille.load(std::memory_order_relaxed);
  if (permille < 1000) {
    // Cheap per-hit hash; fault injection needs coverage, not entropy.
    uint64_t x = hit * 0x9E3779B97F4A7C15ull;
    x ^= x >> 29;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 32;
    if (x % 1000 >= permille) return Fired::kNo;
  }
  switch (static_cast<Action>(fp->action.load(std::memory_order_relaxed))) {
    case Action::kOff:
      return Fired::kNo;
    case Action::kError:
      if (status_context) return Fired::kError;
      throw FailpointError(fp->name);
    case Action::kThrow:
      throw FailpointError(fp->name);
    case Action::kOom:
      throw std::bad_alloc();
    case Action::kKill:
      std::raise(SIGKILL);
      return Fired::kNo;
  }
  return Fired::kNo;
}

bool Enabled() { return true; }

Status Configure(const std::string& spec) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  ParseEnvOnce(reg);
  return ConfigureLocked(reg, spec);
}

void Reset() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  ParseEnvOnce(reg);
  reg.pending.clear();
  for (auto& [name, fp] : reg.points) {
    (void)name;
    fp->armed.store(false, std::memory_order_relaxed);
    fp->action.store(static_cast<uint8_t>(Action::kOff),
                     std::memory_order_relaxed);
    fp->one_shot_hit.store(0, std::memory_order_relaxed);
    fp->hits.store(0, std::memory_order_relaxed);
    fp->permille.store(1000, std::memory_order_relaxed);
  }
}

std::vector<std::string> KnownNames() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::string> names;
  names.reserve(reg.points.size());
  for (const auto& [name, fp] : reg.points) {
    (void)fp;
    names.push_back(name);
  }
  return names;
}

}  // namespace fail
}  // namespace spade

#else  // !SPADE_FAILPOINTS

namespace spade {
namespace fail {

bool Enabled() { return false; }

Status Configure(const std::string& spec) {
  if (spec.empty()) return Status::OK();
  return Status::InvalidArgument(
      "failpoints are compiled out of this build (SPADE_FAILPOINTS=OFF)");
}

void Reset() {}

std::vector<std::string> KnownNames() { return {}; }

}  // namespace fail
}  // namespace spade

#endif  // SPADE_FAILPOINTS

namespace spade {
namespace fail {

std::vector<std::string> AllSiteNames() {
  // Every SPADE_FAILPOINT / SPADE_FAILPOINT_STATUS site in src/, sorted.
  // FailpointTest.AllSiteNamesCoversEveryRegisteredSite fails if it drifts.
  return {
      "core.lattice.slice",   "core.measure.load",
      "core.translate",       "delta.apply",
      "delta.compact",        "exec.parallel_for",
      "exec.taskgroup.task",  "ingest.chunk",
      "ingest.scatter",       "ingest.seal",
      "persist.load.attach",  "persist.load.open",
      "persist.save.finish",  "persist.save.open",
      "persist.save.rename",  "persist.save.segment",
      "serve.accept",         "serve.read",
      "serve.request",        "serve.write",
  };
}

}  // namespace fail
}  // namespace spade
