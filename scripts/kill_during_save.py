#!/usr/bin/env python3
"""Crash-safety smoke test: SIGKILL spade_cli mid-SaveStore, then prove the
snapshot at the destination path survived.

The save protocol writes `<path>.tmp.<pid>`, fsyncs it, renames it over the
destination, then fsyncs the parent directory. So a kill at ANY point must
leave the destination either byte-identical to the previous snapshot or a
complete new one -- never a torn file. This script drives that matrix with
the `kill:N` failpoint action: it arms `persist.save.segment=kill:N` for a
range of offsets N (killing the process on the Nth segment write), plus
kills at the finish and rename barriers, and after each crash asserts that

  1. the destination file is byte-identical to the snapshot that was there
     before the crashed save started, and
  2. `spade_cli --load-store <dest>` still exits 0 (checksums verified).

Requires a spade_cli built with -DSPADE_FAILPOINTS=ON; the script fails
loudly (rather than passing vacuously) when failpoints are compiled out.

Usage: kill_during_save.py /path/to/spade_cli [--offsets N]
"""

import argparse
import hashlib
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile

XSD_INT = "http://www.w3.org/2001/XMLSchema#integer"
XSD_DOUBLE = "http://www.w3.org/2001/XMLSchema#double"
RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"


def write_corpus(path, num_facts=600, seed=7):
    """A small typed fact table: 3 dimensions, 2 measures, 2 fact types."""
    rng = random.Random(seed)
    with open(path, "w") as out:
        for f in range(num_facts):
            s = f"<http://bench.spade/fact/{f}>"
            ftype = "Fact" if f % 2 == 0 else "Fact1"
            out.write(f"{s} <{RDF_TYPE}> <http://bench.spade/{ftype}> .\n")
            for d in range(3):
                v = rng.randrange(12)
                out.write(
                    f'{s} <http://bench.spade/dim{d}> "{v}"^^<{XSD_INT}> .\n'
                )
            for m in range(2):
                v = 100.0 * (m + 1) + rng.gauss(0, 10)
                out.write(
                    f'{s} <http://bench.spade/measure{m}> '
                    f'"{v:.6f}"^^<{XSD_DOUBLE}> .\n'
                )


def sha256(path):
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for block in iter(lambda: f.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()


def run(cli, args, failpoint=None, timeout=120):
    env = dict(os.environ)
    env.pop("SPADE_FAILPOINT", None)
    if failpoint:
        env["SPADE_FAILPOINT"] = failpoint
    return subprocess.run(
        [cli] + args,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        timeout=timeout,
    )


def clean_tmp_debris(snap):
    """A SIGKILLed save leaves its private tmp file behind; that is expected
    (and harmless: the next save uses a fresh pid-suffixed name). Sweep it so
    each iteration starts clean and debris growth stays observable."""
    directory = os.path.dirname(snap) or "."
    base = os.path.basename(snap) + ".tmp."
    removed = 0
    for name in os.listdir(directory):
        if name.startswith(base):
            os.remove(os.path.join(directory, name))
            removed += 1
    return removed


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("cli", help="path to a spade_cli built with failpoints")
    parser.add_argument(
        "--offsets", type=int, default=10,
        help="kill offsets to try on persist.save.segment (default 10)")
    args = parser.parse_args()
    cli = os.path.abspath(args.cli)

    workdir = tempfile.mkdtemp(prefix="spade_killsave_")
    data = os.path.join(workdir, "corpus.nt")
    snap = os.path.join(workdir, "store.spade")
    write_corpus(data)
    base_args = [data, "--threads", "2", "--top", "3", "--quiet"]

    failures = []

    def check(label, ok, detail=""):
        mark = "ok " if ok else "FAIL"
        print(f"  [{mark}] {label}" + (f": {detail}" if detail and not ok else ""))
        if not ok:
            failures.append(label)

    # Sanity: the binary must actually have failpoints compiled in, else the
    # kills never fire and this whole test passes without testing anything.
    probe = run(cli, base_args + ["--save-store", snap],
                failpoint="persist.save.open=error:1")
    check("failpoints compiled in (armed save fails)", probe.returncode != 0,
          "binary ignored SPADE_FAILPOINT -- built without SPADE_FAILPOINTS?"
          if probe.returncode == 0 else "")
    if failures:
        sys.exit(1)

    # Baseline snapshot: save cleanly, remember its bytes, prove it loads.
    clean = run(cli, base_args + ["--save-store", snap])
    check("baseline save", clean.returncode == 0,
          clean.stderr.decode(errors="replace").strip())
    golden = sha256(snap)
    loaded = run(cli, ["--load-store", snap, "--top", "3", "--quiet"])
    check("baseline load", loaded.returncode == 0)
    if failures:
        sys.exit(1)

    # Kill matrix: the Nth segment write for N = 1..offsets, then the finish
    # and rename barriers. Offsets beyond the segment count simply let the
    # save complete -- then the destination must hold the NEW snapshot and
    # still load; both arms of the atomicity contract get exercised.
    kill_specs = [f"persist.save.segment=kill:{n}"
                  for n in range(1, args.offsets + 1)]
    kill_specs += ["persist.save.finish=kill:1", "persist.save.rename=kill:1"]

    for spec in kill_specs:
        clean_tmp_debris(snap)
        before = sha256(snap)
        proc = run(cli, base_args + ["--save-store", snap], failpoint=spec)
        killed = proc.returncode == -signal.SIGKILL
        after = sha256(snap)
        if killed:
            check(f"{spec}: destination byte-identical after kill",
                  after == before)
        else:
            # The failpoint never fired (offset past the last segment): the
            # save ran to completion and must have replaced the snapshot.
            check(f"{spec}: save completed (offset past end), exit 0",
                  proc.returncode == 0,
                  proc.stderr.decode(errors="replace").strip())
        reload = run(cli, ["--load-store", snap, "--top", "3", "--quiet"])
        check(f"{spec}: destination loads", reload.returncode == 0,
              reload.stderr.decode(errors="replace").strip())

    # After all the crashes: one clean save over the survivor must work and
    # produce a loadable snapshot again (tmp naming never collides).
    clean_tmp_debris(snap)
    final = run(cli, base_args + ["--save-store", snap])
    check("post-crash clean save", final.returncode == 0,
          final.stderr.decode(errors="replace").strip())
    check("post-crash snapshot differs from pre-kill baseline or matches",
          sha256(snap) != "" and os.path.getsize(snap) > 0)
    reload = run(cli, ["--load-store", snap, "--top", "3", "--quiet"])
    check("post-crash snapshot loads", reload.returncode == 0)

    shutil.rmtree(workdir, ignore_errors=True)
    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        sys.exit(1)
    print(f"\nall checks passed ({len(kill_specs)} kill points, "
          f"golden={golden[:12]})")


if __name__ == "__main__":
    main()
