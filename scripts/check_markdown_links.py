#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve and doc counts are current.

Scans the given markdown files (default: every tracked *.md plus
.github/**.md) for inline links/images `[text](target)` and reference
definitions `[id]: target`, and fails if a relative target does not exist
on disk. External links (scheme://, mailto:) are ignored; `#anchor`-only
links are checked against the headings of the same file, and
`file.md#anchor` links against the headings of the target file.

Also cross-checks every "N gtest suites" claim against the number of
tests/*_test.cc files actually in the tree, so adding a test suite without
updating the docs fails the CI docs job.

Usage: scripts/check_markdown_links.py [FILE.md ...]
Exit code 0 when everything checks out, 1 otherwise (each failure printed).
"""

import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"(?<!\\)!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF_RE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug (enough of it for our headings)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps its text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        content = f.read()
    # Strip fenced code blocks: a `# comment` inside one is not a heading.
    content = re.sub(r"```.*?```", "", content, flags=re.DOTALL)
    return {github_anchor(h) for h in HEADING_RE.findall(content)}


def targets_of(path: str):
    with open(path, encoding="utf-8") as f:
        content = f.read()
    content = re.sub(r"```.*?```", "", content, flags=re.DOTALL)
    yield from LINK_RE.findall(content)
    yield from REFDEF_RE.findall(content)


def check_file(md: str) -> list:
    errors = []
    base = os.path.dirname(md)
    for target in targets_of(md):
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):  # scheme: external
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = os.path.normpath(os.path.join(base, path_part))
            if not os.path.exists(resolved):
                errors.append(f"{md}: broken link -> {target}")
                continue
            anchor_file = resolved
        else:
            anchor_file = md
        if anchor and anchor_file.endswith(".md"):
            if github_anchor(anchor) not in anchors_of(anchor_file):
                errors.append(f"{md}: broken anchor -> {target}")
    return errors


SUITE_COUNT_RE = re.compile(r"(\d+)\s+gtest\s+suites?")


def check_suite_counts(md: str, repo_root: str) -> list:
    """Every 'N gtest suites' claim must equal the tests/*_test.cc count."""
    import glob
    actual = len(glob.glob(os.path.join(repo_root, "tests", "*_test.cc")))
    if actual == 0:  # not run from the repo root; nothing to verify against
        return []
    errors = []
    with open(md, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            for claim in SUITE_COUNT_RE.findall(line):
                if int(claim) != actual:
                    errors.append(
                        f"{md}:{lineno}: says {claim} gtest suites, but "
                        f"tests/ has {actual} *_test.cc files")
    return errors


def main(argv):
    files = argv[1:]
    if not files:
        out = subprocess.run(
            ["git", "ls-files", "*.md", "**/*.md"],
            capture_output=True, text=True, check=True)
        files = sorted(set(out.stdout.split()))
    errors = []
    for md in files:
        if not os.path.exists(md):
            errors.append(f"{md}: file not found")
            continue
        errors.extend(check_file(md))
        errors.extend(check_suite_counts(md, os.getcwd()))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
