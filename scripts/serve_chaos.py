#!/usr/bin/env python3
"""Chaos suite for the TCP insight server: drive a real spade_cli process
over loopback TCP through hostile client behaviour and process-level faults,
and assert the hardening contracts of src/net/tcp_server.h from the outside.

Scenarios (each starts its own server on an ephemeral port, discovered by
parsing the exact `listening on HOST:PORT` stderr line the CLI prints):

  baseline        N concurrent well-behaved clients; every request answered;
                  SIGTERM afterwards exits 0 with a `drain clean` summary.
  sigterm-load    SIGTERM while clients are mid-request: the process must
                  exit 0 within 2x drain deadline + margin (the drain
                  contract), and clients must see complete blocks or a clean
                  EOF, never a hang.
  slow-reader     a client that pipelines requests and then reads one byte
                  at a time must still receive every block, in order
                  (backpressure, not disconnection).
  disconnect      a client that resets mid-response costs only itself: the
                  server keeps answering a concurrent well-behaved client.
  sigkill         SIGKILL mid-request: clients observe EOF/reset promptly
                  (no hang), and a fresh server starts fine afterwards.
  failpoints      (only when the binary has failpoints compiled in) random
                  injected accept/read/write faults: retrying clients still
                  get every request answered, and the server survives to
                  drain clean.

Usage: serve_chaos.py /path/to/spade_cli [--clients N] [--requests N]
"""

import argparse
import os
import signal
import socket
import subprocess
import sys
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from kill_during_save import write_corpus  # noqa: E402

DRAIN_MS = 1500


class Server:
    """One spade_cli --listen process; parses the listening line, keeps
    draining stderr on a thread so the process can never block on the pipe."""

    def __init__(self, cli, data, extra_args=(), env_extra=None):
        env = dict(os.environ)
        env.pop("SPADE_FAILPOINT", None)
        if env_extra:
            env.update(env_extra)
        self.proc = subprocess.Popen(
            [cli, data, "--threads", "2", "--quiet",
             "--listen", "127.0.0.1:0", "--drain-ms", str(DRAIN_MS)]
            + list(extra_args),
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            text=True)
        self.stderr_lines = []
        self._port_event = threading.Event()
        self.port = None
        self._reader = threading.Thread(target=self._drain_stderr, daemon=True)
        self._reader.start()
        if not self._port_event.wait(timeout=60):
            self.proc.kill()
            raise RuntimeError("server never printed its listening line:\n"
                               + "".join(self.stderr_lines))

    def _drain_stderr(self):
        for line in self.proc.stderr:
            self.stderr_lines.append(line)
            if line.startswith("listening on "):
                self.port = int(line.rsplit(":", 1)[1])
                self._port_event.set()
        self._port_event.set()  # EOF without the line: unblock the waiter

    def stop(self, sig=signal.SIGTERM, timeout=None):
        """Signal the process, wait, return (exit_code, stderr_text)."""
        if timeout is None:
            timeout = 2 * DRAIN_MS / 1000 + 10
        if self.proc.poll() is None:
            self.proc.send_signal(sig)
        try:
            code = self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
            code = None  # did not exit in time: the caller's check fails
        self._reader.join(timeout=5)
        return code, "".join(self.stderr_lines)


class Client:
    """Minimal line-protocol client mirroring net::LineClient's retry rules:
    `busy` (either form) and transport faults retry with backoff; `error:`
    replies are terminal but count as answered."""

    def __init__(self, port, timeout=30):
        self.port = port
        self.timeout = timeout
        self.sock = None
        self.buf = b""

    def _connect(self):
        self.close()
        s = socket.create_connection(("127.0.0.1", self.port), self.timeout)
        s.settimeout(self.timeout)
        s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock = s
        self.buf = b""

    def _readline(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(4096)
            if not chunk:
                raise ConnectionError("EOF mid-response")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode(errors="replace")

    def request(self, line, attempts=25):
        """Send one request, return its body lines (prefixes stripped).
        Raises after `attempts` failed tries."""
        last = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(min(1.0, 0.02 * (1 << min(attempt, 5))))
            try:
                if self.sock is None:
                    self._connect()
                self.sock.sendall(line.encode() + b"\n")
                body = []
                while True:
                    raw = self._readline()
                    if raw == "busy":  # accept-shed: whole connection refused
                        raise ConnectionError("shed at accept")
                    stripped = raw.split(" ", 1)[1] if " " in raw else ""
                    if stripped.startswith("> "):
                        continue
                    if stripped == "busy":  # request-shed: same socket retries
                        last = "busy"
                        break
                    body.append(stripped)
                    if stripped == "end" or stripped.startswith("error:"):
                        return body
            except (OSError, ConnectionError) as e:
                last = str(e)
                self.close()
        raise RuntimeError(f"request '{line}' failed after {attempts} "
                           f"attempts: {last}")

    def close(self):
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None


failures = []


def check(label, ok, detail=""):
    mark = "ok " if ok else "FAIL"
    print(f"  [{mark}] {label}" + (f": {detail}" if detail and not ok else ""),
          flush=True)
    if not ok:
        failures.append(label)


def hammer(port, num_clients, num_requests, errors):
    """num_clients threads, each issuing num_requests explores; transport
    errors are appended to `errors` (scenarios decide if they're fatal)."""
    def worker(i):
        c = Client(port)
        try:
            for r in range(num_requests):
                c.request(f"explore top={2 + (i + r) % 3}")
        except (RuntimeError, OSError) as e:
            errors.append(str(e))
        finally:
            c.close()
    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(num_clients)]
    for t in threads:
        t.start()
    return threads


def scenario_baseline(cli, data, num_clients, num_requests):
    print("-- baseline: concurrent clients, then graceful SIGTERM")
    srv = Server(cli, data)
    errors = []
    threads = hammer(srv.port, num_clients, num_requests, errors)
    for t in threads:
        t.join()
    check("baseline: all clients served", not errors,
          errors[0] if errors else "")
    code, err = srv.stop()
    check("baseline: SIGTERM exits 0", code == 0, f"exit={code}\n{err}")
    check("baseline: summary says drain clean", "drain clean" in err, err)


def scenario_sigterm_under_load(cli, data, num_clients):
    print("-- sigterm-load: SIGTERM with requests in flight")
    srv = Server(cli, data)
    errors = []
    threads = hammer(srv.port, num_clients, 50, errors)
    time.sleep(0.5)  # let requests pile in
    t0 = time.monotonic()
    code, err = srv.stop()
    elapsed = time.monotonic() - t0
    # Clients racing the drain may see EOF — that is the contract, not a bug;
    # what they must never do is hang.
    for t in threads:
        t.join(timeout=30)
    check("sigterm-load: no client thread hung",
          not any(t.is_alive() for t in threads))
    check("sigterm-load: exits within 2x drain deadline + margin",
          code is not None and elapsed < 2 * DRAIN_MS / 1000 + 8,
          f"exit={code} after {elapsed:.1f}s")
    check("sigterm-load: exit code 0 (drain clean)", code == 0,
          f"exit={code}\n{err}")


def scenario_slow_reader(cli, data):
    print("-- slow-reader: pipelined requests drained one byte at a time")
    srv = Server(cli, data)
    s = socket.create_connection(("127.0.0.1", srv.port), 30)
    s.settimeout(30)
    n = 4
    s.sendall(b"explore top=2\n" * n + b"quit\n")
    time.sleep(0.5)  # let responses buffer server-side
    data_read = b""
    try:
        while True:
            b1 = s.recv(1)  # one byte at a time: worst-case slow reader
            if not b1:
                break
            data_read += b1
            if data_read.count(b" end\n") < 2:
                time.sleep(0.002)  # slow for a while, then drain fast
    except socket.timeout:
        pass
    s.close()
    ends = data_read.count(b" end\n")
    check("slow-reader: every pipelined block delivered", ends == n,
          f"got {ends}/{n} blocks: {data_read[:200]!r}")
    ids = [line.split(b" ", 1)[0] for line in data_read.split(b"\n")
           if line.startswith(b"#")]
    check("slow-reader: blocks in request order", ids == sorted(ids),
          str(ids))
    code, err = srv.stop()
    check("slow-reader: server drains clean afterwards", code == 0,
          f"exit={code}\n{err}")


def scenario_disconnect(cli, data):
    print("-- disconnect: client resets mid-response")
    srv = Server(cli, data)
    rude = socket.create_connection(("127.0.0.1", srv.port), 30)
    rude.sendall(b"explore top=5\n")
    rude.recv(16)  # start reading the response...
    rude.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00")  # ...then RST
    rude.close()
    polite = Client(srv.port)
    body = polite.request("explore top=2")
    polite.close()
    check("disconnect: concurrent client still served",
          body and body[-1] == "end", str(body))
    code, err = srv.stop()
    check("disconnect: server drains clean afterwards", code == 0,
          f"exit={code}\n{err}")


def scenario_sigkill(cli, data, num_clients):
    print("-- sigkill: hard kill mid-request")
    srv = Server(cli, data)
    errors = []
    threads = hammer(srv.port, num_clients, 1000, errors)
    time.sleep(0.5)
    code, _ = srv.stop(sig=signal.SIGKILL, timeout=15)
    for t in threads:
        t.join(timeout=30)
    check("sigkill: no client thread hung",
          not any(t.is_alive() for t in threads))
    check("sigkill: process died by SIGKILL", code == -signal.SIGKILL,
          f"exit={code}")
    # The machine the server shares with others is fine: a new one binds.
    srv2 = Server(cli, data)
    c = Client(srv2.port)
    body = c.request("stats")
    c.close()
    check("sigkill: fresh server works", body and body[-1] == "end")
    code, err = srv2.stop()
    check("sigkill: fresh server drains clean", code == 0,
          f"exit={code}\n{err}")


def scenario_failpoints(cli, data, num_clients, num_requests):
    print("-- failpoints: injected accept/read/write faults under load")
    probe = subprocess.run([cli, "--list-failpoints"],
                           stdout=subprocess.DEVNULL,
                           stderr=subprocess.DEVNULL)
    if probe.returncode != 0:
        print("  [skip] failpoints compiled out of this binary")
        return
    spec = "serve.accept=error:0.05,serve.read=error:0.03,serve.write=error:0.03"
    srv = Server(cli, data, env_extra={"SPADE_FAILPOINT": spec})
    errors = []
    threads = hammer(srv.port, num_clients, num_requests, errors)
    for t in threads:
        t.join()
    check("failpoints: every request eventually answered", not errors,
          errors[0] if errors else "")
    code, err = srv.stop()
    check("failpoints: server survives the storm and drains clean",
          code == 0, f"exit={code}\n{err}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("cli", help="path to spade_cli")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=12,
                        help="requests per client in the load scenarios")
    args = parser.parse_args()
    cli = os.path.abspath(args.cli)

    import tempfile
    workdir = tempfile.mkdtemp(prefix="spade_chaos_")
    data = os.path.join(workdir, "corpus.nt")
    write_corpus(data, num_facts=400)

    scenario_baseline(cli, data, args.clients, args.requests)
    scenario_sigterm_under_load(cli, data, args.clients)
    scenario_slow_reader(cli, data)
    scenario_disconnect(cli, data)
    scenario_sigkill(cli, data, args.clients)
    scenario_failpoints(cli, data, args.clients, args.requests)

    import shutil
    shutil.rmtree(workdir, ignore_errors=True)
    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        sys.exit(1)
    print("\nall chaos scenarios passed")


if __name__ == "__main__":
    main()
