// Computational Lead Finding (the paper's motivating application): run Spade
// on the CEOs graph and render the winning aggregates the way a journalist
// would see them — histograms for one-dimensional leads, heat maps for
// two-dimensional ones, tables beyond (Figure 1b / Figure 6a / Section 1).

#include <iostream>
#include <sstream>

#include "src/core/export.h"
#include "src/core/present.h"
#include "src/core/spade.h"
#include "src/datagen/realworld.h"

int main() {
  std::cout << "=== Computational Lead Finding on the CEOs graph ===\n\n";
  auto graph = spade::GenerateCeos(/*seed=*/2021, /*scale=*/1.0);
  std::cout << "Graph: " << graph->NumTriples() << " triples.\n";

  spade::SpadeOptions options;
  options.top_k = 6;
  options.max_stored_groups = 256;
  options.interestingness = spade::InterestingnessKind::kVariance;
  options.enable_earlystop = true;  // production configuration

  spade::Spade spade(graph.get(), options);
  if (!spade.RunOffline().ok()) return 1;
  auto insights = spade.RunOnline();
  if (!insights.ok()) {
    std::cerr << insights.status().ToString() << "\n";
    return 1;
  }

  const auto& report = spade.report();
  std::cout << "Explored " << report.num_candidate_aggregates
            << " candidate aggregates across " << report.num_lattices
            << " lattices (" << report.num_pruned_aggregates
            << " pruned early); offline " << report.timings.OfflineTotal()
            << " ms, online " << report.timings.OnlineTotal() << " ms.\n";

  int rank = 1;
  spade::RenderOptions render;
  render.max_rows = 12;
  for (const auto& insight : *insights) {
    std::cout << "\n--- Lead #" << rank++ << " ---\n";
    spade::RenderInsight(spade.store(), insight, render, std::cout);
  }

  // Hand the leads to downstream tooling as JSON.
  std::ostringstream json;
  spade::ExportInsightsJson(spade.store(), *insights,
                            options.interestingness, json);
  std::cout << "\nJSON export: " << json.str().size()
            << " bytes (ExportInsightsJson); every lead is also a SPARQL 1.1 "
               "query (insight.sparql) for drill-down in any RDF engine.\n";
  return 0;
}
