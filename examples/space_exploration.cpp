// NASA-graph exploration (Figures 6b/6c of the paper): path derivations let
// Spade group launches by spacecraft/agency — a dimension that exists in no
// single triple — and surface the USSR launch-site concentration and the
// heavy crewed-mission spacecraft.
//
// This example also demonstrates the woD/wD contrast of Experiment 1 on one
// dataset: run first without derivations, then with them.

#include <iostream>

#include "src/core/spade.h"
#include "src/datagen/realworld.h"

namespace {

void Run(spade::Graph* graph, bool derivations) {
  spade::SpadeOptions options;
  options.top_k = 4;
  options.enable_derivations = derivations;
  options.max_stored_groups = 128;

  spade::Spade spade(graph, options);
  if (!spade.RunOffline().ok()) return;
  auto insights = spade.RunOnline();
  if (!insights.ok()) return;

  std::cout << (derivations ? "WITH" : "WITHOUT") << " derived properties: "
            << spade.report().num_candidate_aggregates
            << " candidate aggregates";
  if (derivations) {
    const auto& d = spade.report().derivations;
    std::cout << " (" << d.num_path_attrs << " path, " << d.num_count_attrs
              << " count, " << d.num_keyword_attrs << " keyword, "
              << d.num_language_attrs << " language derivations)";
  }
  std::cout << "\n";
  int rank = 1;
  for (const auto& insight : *insights) {
    std::cout << "  #" << rank++ << " [" << insight.ranked.score << "] "
              << insight.description << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Exploring the NASA launches graph ===\n\n";
  {
    auto graph = spade::GenerateNasa(1969, 1.0);
    std::cout << "Graph: " << graph->NumTriples() << " triples.\n\n";
    Run(graph.get(), /*derivations=*/false);
  }
  {
    auto graph = spade::GenerateNasa(1969, 1.0);
    Run(graph.get(), /*derivations=*/true);
  }
  std::cout << "The path-derived dimensions (e.g. spacecraft/agency) only\n"
               "exist in the second run — they are what surfaces insights\n"
               "like 'number of launches by launch site and agency'.\n";
  return 0;
}
