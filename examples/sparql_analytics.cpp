// Using the SPARQL layer directly: express the paper's three running-example
// aggregates (Table 1) as SPARQL 1.1 and evaluate them on the Figure 1 graph.
// This bypasses the discovery pipeline — the point is that every Spade
// insight is an ordinary SPARQL aggregate query anyone can re-run.

#include <iostream>

#include "src/rdf/ntriples.h"
#include "src/sparql/eval.h"
#include "src/sparql/parser.h"

namespace {

const char* kFigure1 = R"(
<n1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <CEO> .
<n1> <name> "Isabel dos Santos" .
<n1> <gender> "Female" .
<n1> <age> "47" .
<n1> <netWorth> "2800000000" .
<n1> <nationality> <Angola> .
<n1> <countryOfOrigin> <Angola> .
<n1> <company> <sodian> .
<n1> <company> <sonangol> .
<n1> <politicalConnection> <dossantos> .
<sodian> <area> "Diamond" .
<sonangol> <area> "NaturalGas" .
<sonangol> <area> "Manufacturer" .
<dossantos> <role> "President" .
<n2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <CEO> .
<n2> <name> "Carlos Ghosn" .
<n2> <age> "66" .
<n2> <netWorth> "120000000" .
<n2> <nationality> <Brazil> .
<n2> <nationality> <France> .
<n2> <nationality> <Lebanon> .
<n2> <nationality> <Nigeria> .
<n2> <company> <renault> .
<n2> <politicalConnection> <aoun> .
<renault> <area> "Automotive" .
<renault> <area> "Manufacturer" .
<aoun> <role> "President" .
)";

void RunQuery(spade::Graph& graph, const char* title, const char* text) {
  std::cout << "--- " << title << " ---\n" << text << "\n";
  auto query = spade::sparql::ParseQuery(text, &graph.dict());
  if (!query.ok()) {
    std::cout << "parse error: " << query.status().ToString() << "\n";
    return;
  }
  auto rs = spade::sparql::Evaluate(*query, graph);
  if (!rs.ok()) {
    std::cout << "eval error: " << rs.status().ToString() << "\n";
    return;
  }
  for (const auto& col : rs->columns) std::cout << col << "\t";
  std::cout << "\n";
  for (const auto& row : rs->rows) {
    for (const auto& value : row) {
      if (value.kind == spade::sparql::Value::Kind::kTerm) {
        std::cout << spade::TermToString(graph.dict().Get(value.term));
      } else {
        std::cout << value.num;
      }
      std::cout << "\t";
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  spade::Graph graph;
  spade::Status st = spade::NTriplesReader::ParseString(kFigure1, &graph);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "Figure 1 graph: " << graph.NumTriples() << " triples.\n\n";

  RunQuery(graph, "Example 1: sum of net worth by country of origin",
           "SELECT ?c (SUM(?nw) AS ?totalNetWorth)\n"
           "WHERE {\n"
           "  ?ceo a <CEO> .\n"
           "  ?ceo <politicalConnection> ?p .\n"
           "  ?ceo <countryOfOrigin> ?c .\n"
           "  ?ceo <netWorth> ?nw .\n"
           "}\nGROUP BY ?c");

  RunQuery(graph, "Example 2: average age by nationality",
           "SELECT ?nat (AVG(?age) AS ?avgAge) (COUNT(*) AS ?n)\n"
           "WHERE {\n"
           "  ?ceo a <CEO> .\n"
           "  ?ceo <nationality> ?nat .\n"
           "  ?ceo <age> ?age .\n"
           "}\nGROUP BY ?nat");

  RunQuery(graph, "Example 3: CEOs per company area (property path)",
           "SELECT ?area (COUNT(DISTINCT ?ceo) AS ?ceos)\n"
           "WHERE {\n"
           "  ?ceo a <CEO> .\n"
           "  ?ceo <company>/<area> ?area .\n"
           "}\nGROUP BY ?area");

  RunQuery(graph, "Filters: billionaires only",
           "SELECT ?name ?nw\n"
           "WHERE {\n"
           "  ?ceo <name> ?name .\n"
           "  ?ceo <netWorth> ?nw .\n"
           "  FILTER(?nw >= 1000000000)\n"
           "}");
  return 0;
}
