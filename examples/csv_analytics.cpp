// The Airline story end-to-end (Section 6): take a relational CSV table,
// convert it to RDF ("each tuple becomes a CF with a fixed set of
// properties"), and let Spade find the interesting aggregates. Demonstrates
// CsvToRdf + the pipeline + the presentation/export modules working together
// on data that never was a graph.
//
// Usage: csv_analytics [flights.csv]   (generates a synthetic table if absent)

#include <fstream>
#include <iostream>
#include <sstream>

#include "src/core/export.h"
#include "src/core/present.h"
#include "src/core/spade.h"
#include "src/rdf/csv2rdf.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace {

std::string SyntheticFlightsCsv() {
  spade::Rng rng(1987);
  std::ostringstream csv;
  csv << "carrier,origin,month,dayOfWeek,depDelay,arrDelay,distance\n";
  const char* carriers[] = {"AA", "DL", "UA", "WN", "B6"};
  const char* airports[] = {"ATL", "ORD", "DFW", "DEN", "LAX", "JFK"};
  for (int i = 0; i < 6000; ++i) {
    size_t carrier = rng.Zipf(5, 1.0);
    double dep = 12 + 8 * rng.NextGaussian();
    // One airline melts down in the summer months: the lead to find.
    int month = static_cast<int>(1 + rng.Uniform(12));
    if (carrier == 4 && (month == 7 || month == 8)) dep += 95;
    if (dep < 0) dep = 0;
    double arr = dep + 5 * rng.NextGaussian();
    if (arr < 0) arr = 0;
    csv << carriers[carrier] << "," << airports[rng.Uniform(6)] << "," << month
        << "," << (1 + rng.Uniform(7)) << "," << spade::FormatDouble(dep, 1)
        << "," << spade::FormatDouble(arr, 1) << ","
        << (200 + rng.Uniform(2300)) << "\n";
  }
  return csv.str();
}

}  // namespace

int main(int argc, char** argv) {
  spade::Graph graph;
  spade::Csv2RdfOptions copt;
  copt.base_iri = "http://flights/";
  copt.row_type = "Flight";

  spade::Result<size_t> rows = [&]() -> spade::Result<size_t> {
    if (argc > 1) {
      std::ifstream in(argv[1]);
      if (!in) return spade::Status::NotFound(std::string(argv[1]));
      return spade::CsvToRdf(in, copt, &graph);
    }
    return spade::CsvToRdfString(SyntheticFlightsCsv(), copt, &graph);
  }();
  if (!rows.ok()) {
    std::cerr << "CSV load failed: " << rows.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Converted " << *rows << " rows into " << graph.NumTriples()
            << " triples.\n\n";

  spade::SpadeOptions options;
  options.top_k = 4;
  options.max_stored_groups = 128;
  options.cfs.min_size = 100;
  spade::Spade spade(&graph, options);
  if (!spade.RunOffline().ok()) return 1;
  auto insights = spade.RunOnline();
  if (!insights.ok()) {
    std::cerr << insights.status().ToString() << "\n";
    return 1;
  }

  std::cout << "Searched " << spade.report().num_candidate_aggregates
            << " candidate aggregates; note that a flat relational table "
               "yields no derived properties ("
            << spade.report().derivations.total() << " derived), matching "
            << "the paper's Airline observation.\n";
  spade::RenderOptions render;
  int rank = 1;
  for (const auto& insight : *insights) {
    std::cout << "\n#" << rank++ << "  ";
    spade::RenderInsight(spade.store(), insight, render, std::cout);
  }

  std::ostringstream csv_export;
  spade::ExportInsightsCsv(spade.store(), *insights, csv_export);
  std::cout << "\nFlattened CSV export of the groups ("
            << csv_export.str().size() << " bytes) ready for a spreadsheet.\n";
  return 0;
}
