// Quickstart: load an RDF graph from N-Triples, run the full Spade pipeline,
// and print the top-5 most interesting aggregates with their SPARQL form.
//
// Usage:  quickstart [file.nt]
// Without an argument, a small built-in graph (the paper's Figure 1 CEOs,
// replicated with variations) is used so the example runs standalone.

#include <fstream>
#include <iostream>
#include <sstream>

#include "src/core/spade.h"
#include "src/rdf/ntriples.h"
#include "src/util/rng.h"

namespace {

/// A miniature CEOs graph in the spirit of Figure 1: a few hundred CEOs with
/// multi-valued nationalities, net worth outliers, and company/area links.
std::string BuiltinGraph() {
  spade::Rng rng(2024);
  std::ostringstream nt;
  const char* countries[] = {"Angola", "Brazil", "France", "Lebanon",
                             "Nigeria", "Japan"};
  const char* areas[] = {"Automotive", "Diamond", "Manufacturer", "NaturalGas"};
  for (int c = 0; c < 40; ++c) {
    nt << "<http://x/company" << c << "> <http://x/area> \""
       << areas[rng.Uniform(4)] << "\" .\n";
    if (rng.Bernoulli(0.4)) {
      nt << "<http://x/company" << c << "> <http://x/area> \""
         << areas[rng.Uniform(4)] << "\" .\n";
    }
  }
  for (int i = 0; i < 300; ++i) {
    std::string ceo = "<http://x/ceo" + std::to_string(i) + ">";
    nt << ceo << " <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
       << "<http://x/CEO> .\n";
    size_t nats = 1 + rng.Uniform(3);
    for (size_t k = 0; k < nats; ++k) {
      nt << ceo << " <http://x/nationality> \"" << countries[rng.Uniform(6)]
         << "\" .\n";
    }
    if (rng.Bernoulli(0.9)) {
      nt << ceo << " <http://x/gender> \""
         << (rng.Bernoulli(0.25) ? "Female" : "Male") << "\" .\n";
    }
    if (rng.Bernoulli(0.8)) {
      double nw = 1e7 * static_cast<double>(1 + rng.Uniform(100));
      if (rng.Bernoulli(0.03)) nw *= 30;  // dos Santos-style outliers
      nt << ceo << " <http://x/netWorth> \"" << nw << "\" .\n";
    }
    nt << ceo << " <http://x/age> \"" << (35 + rng.Uniform(40)) << "\" .\n";
    nt << ceo << " <http://x/company> <http://x/company" << rng.Uniform(40)
       << "> .\n";
  }
  return nt.str();
}

}  // namespace

int main(int argc, char** argv) {
  spade::Graph graph;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    spade::Status st = spade::NTriplesReader::Parse(in, &graph);
    if (!st.ok()) {
      std::cerr << "parse error: " << st.ToString() << "\n";
      return 1;
    }
  } else {
    spade::Status st =
        spade::NTriplesReader::ParseString(BuiltinGraph(), &graph);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }
  std::cout << "Loaded " << graph.NumTriples() << " triples.\n\n";

  spade::SpadeOptions options;
  options.top_k = 5;
  options.cfs.min_size = 20;
  options.interestingness = spade::InterestingnessKind::kVariance;

  spade::Spade spade(&graph, options);
  spade::Status st = spade.RunOffline();
  if (!st.ok()) {
    std::cerr << "offline failed: " << st.ToString() << "\n";
    return 1;
  }
  auto insights = spade.RunOnline();
  if (!insights.ok()) {
    std::cerr << "online failed: " << insights.status().ToString() << "\n";
    return 1;
  }

  std::cout << "Pipeline profile: " << spade.report().num_cfs
            << " candidate fact sets, " << spade.report().num_lattices
            << " lattices, " << spade.report().num_candidate_aggregates
            << " candidate aggregates.\n\n";
  std::cout << "Top-" << insights->size() << " interesting aggregates ("
            << spade::InterestingnessName(options.interestingness) << "):\n";
  int rank = 1;
  for (const auto& insight : *insights) {
    std::cout << "\n#" << rank++ << "  score="
              << insight.ranked.score << "  groups="
              << insight.ranked.num_groups << "\n  " << insight.description
              << "\n";
    std::cout << "  SPARQL:\n";
    std::istringstream lines(insight.sparql);
    std::string line;
    while (std::getline(lines, line)) std::cout << "    " << line << "\n";
  }
  return 0;
}
