// spade_cli — run the full discovery pipeline on a data file from the shell.
//
//   spade_cli DATA [options]
//   spade_cli --load-store FILE [options]
//
//   DATA                 .nt (N-Triples), .ttl (Turtle) or .csv input
//                        (optional when --load-store is given)
//   --top K              number of insights to return           (default 10)
//   --interestingness F  variance | skewness | kurtosis         (default variance)
//   --algorithm A        mvdcube | pgcube | pgcube-distinct | arraycube
//                                                               (default mvdcube)
//   --threads N          worker threads (online phase and streaming ingest);
//                        0 = all cores                        (default 0)
//   --shards N           fact-id-range shards per CFS; 0 = one per thread
//                        (default 0; >1 needs mvdcube without --earlystop)
//   --simd M             measure-fold kernel: auto = runtime CPU dispatch
//                        (AVX2/NEON when available), scalar = portable
//                        kernel; results bit-identical     (default auto)
//   --stream-ingest      streaming offline build: overlap parsing with store
//                        construction and the offline statistics pass
//                        (.nt/.ttl only; results identical to sequential)
//   --ingest-chunk N     triples per streamed chunk          (default 65536)
//   --earlystop          enable confidence-interval pruning
//   --no-derivations     disable derived properties (woD mode)
//   --saturate           RDFS-saturate the graph before analysis
//   --max-dims N         lattice dimensionality cap             (default 3)
//   --min-support R      dimension/measure support threshold    (default 0.1)
//   --deadline-ms MS     online-phase deadline in milliseconds; on expiry the
//                        run returns the completed canonical-order prefix,
//                        marked TRUNCATED                       (default 0 = none)
//   --max-bitmap-mb MB   per-CFS fact-bitmap budget; a CFS that would exceed
//                        it stops admitting groups at a deterministic cut
//                                                               (default 0 = unlimited)
//   --save-store FILE    after the offline phase, persist the built store as
//                        a memory-mapped snapshot (build once...)
//   --load-store FILE    mmap a saved snapshot instead of ingesting: skips
//                        parsing, store building and the offline statistics
//                        pass entirely (...explore many times)
//   --no-verify-snapshot skip per-segment checksum verification on load
//   --serve              after the offline phase, answer explore requests
//                        line-by-line (stdin or --serve-requests) instead of
//                        running one online pass; see src/persist/serve.h
//                        for the request grammar
//   --serve-requests F   read serve requests from F instead of stdin
//   --incremental        cache per-CFS online results across `apply`
//                        mutation batches; CFSs untouched by a delta are
//                        reused instead of re-evaluated (serve modes)
//   --read-only          serve modes: refuse the `apply` / `compact`
//                        mutation verbs
//   --listen HOST:PORT   serve the same request grammar over TCP instead of
//                        stdin/stdout (implies --serve; port 0 = ephemeral,
//                        the bound address is printed to stderr as
//                        "listening on HOST:PORT"). SIGTERM/SIGINT drain
//                        gracefully; see src/net/tcp_server.h
//   --max-connections N  TCP: connections beyond N are answered `busy` and
//                        closed at accept                      (default 64)
//   --max-inflight N     TCP: global cap on concurrently evaluating
//                        requests; beyond it requests are shed with a
//                        `#<id> busy` reply   (default 0 = 2x thread count)
//   --request-timeout-ms MS
//                        serve modes: default AND cap for per-request
//                        timeout= deadlines               (default 0 = none)
//   --idle-timeout-ms MS TCP: close connections with no progress and nothing
//                        in flight for MS              (default 300000; 0 = never)
//   --drain-ms MS        TCP: graceful-drain deadline after SIGTERM/SIGINT;
//                        in-flight requests are cancelled to truncated
//                        replies past it, hard stop at 2x MS  (default 2000)
//   --list-failpoints    print every fault-injection site name and exit
//                        (failpoint builds only; see src/util/failpoint.h)
//   --json FILE          write the insights as JSON
//   --csv FILE           write the flattened insights as CSV
//   --quiet              suppress the rendered insight charts
//
// Exit code 0 on success, 1 on any error (message on stderr).

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "src/core/export.h"
#include "src/core/present.h"
#include "src/core/spade.h"
#include "src/ingest/chunk_source.h"
#include "src/net/tcp_server.h"
#include "src/persist/serve.h"
#include "src/rdf/csv2rdf.h"
#include "src/rdf/ntriples.h"
#include "src/rdf/turtle.h"
#include "src/util/failpoint.h"
#include "src/util/string_util.h"
#include "src/util/timer.h"

namespace {

int Fail(const std::string& message) {
  std::cerr << "spade_cli: " << message << "\n";
  return 1;
}

int Usage() {
  std::cerr << "usage: spade_cli DATA(.nt|.ttl|.csv) [--top K] "
               "[--interestingness variance|skewness|kurtosis]\n"
               "                 [--algorithm mvdcube|pgcube|pgcube-distinct|"
               "arraycube] [--threads N] [--shards N] [--simd auto|scalar]\n"
               "                 [--stream-ingest] [--ingest-chunk N] "
               "[--earlystop] [--no-derivations]\n"
               "                 [--saturate] [--max-dims N] "
               "[--min-support R] [--deadline-ms MS] [--max-bitmap-mb MB]\n"
               "                 [--json FILE] [--csv FILE]\n"
               "                 [--quiet] [--save-store FILE] "
               "[--no-verify-snapshot] [--serve] [--serve-requests FILE]\n"
               "                 [--incremental] [--read-only] "
               "[--listen HOST:PORT] [--max-connections N]\n"
               "                 [--max-inflight N] [--request-timeout-ms MS] "
               "[--idle-timeout-ms MS] [--drain-ms MS]\n"
               "                 [--list-failpoints]\n"
               "       spade_cli --load-store FILE [options]\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  spade::SpadeOptions options;
  options.num_threads = 0;  // the CLI defaults to every core; results are
                            // identical at any thread count
  std::string json_path, csv_path;
  bool quiet = false;
  bool serve = false;
  bool read_only = false;
  std::string serve_requests;
  std::string listen_spec;
  spade::net::TcpServerOptions net_options;
  double request_timeout_ms = 0;

  // The data file is optional when a snapshot is loaded instead.
  std::string data_path;
  int first_flag = 1;
  if (argv[1][0] != '-') {
    data_path = argv[1];
    first_flag = 2;
  }

  for (int i = first_flag; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--top") {
      const char* v = next();
      int64_t k;
      if (v == nullptr || !spade::ParseInt64(v, &k) || k <= 0) {
        return Fail("--top needs a positive integer");
      }
      options.top_k = static_cast<size_t>(k);
    } else if (arg == "--interestingness") {
      const char* v = next();
      if (v == nullptr) return Usage();
      std::string name = spade::ToLower(v);
      if (name == "variance") {
        options.interestingness = spade::InterestingnessKind::kVariance;
      } else if (name == "skewness") {
        options.interestingness = spade::InterestingnessKind::kSkewness;
      } else if (name == "kurtosis") {
        options.interestingness = spade::InterestingnessKind::kKurtosis;
      } else {
        return Fail("unknown interestingness '" + name + "'");
      }
    } else if (arg == "--algorithm") {
      const char* v = next();
      if (v == nullptr) return Usage();
      std::string name = spade::ToLower(v);
      if (name == "mvdcube") {
        options.algorithm = spade::EvalAlgorithm::kMvdCube;
      } else if (name == "pgcube") {
        options.algorithm = spade::EvalAlgorithm::kPgCubeStar;
      } else if (name == "pgcube-distinct") {
        options.algorithm = spade::EvalAlgorithm::kPgCubeDistinct;
      } else if (name == "arraycube") {
        options.algorithm = spade::EvalAlgorithm::kArrayCube;
      } else {
        return Fail("unknown algorithm '" + name + "'");
      }
    } else if (arg == "--threads") {
      const char* v = next();
      int64_t n;
      if (v == nullptr || !spade::ParseInt64(v, &n) || n < 0 || n > 1024) {
        return Fail("--threads needs an integer in [0, 1024] (0 = all cores)");
      }
      options.num_threads = static_cast<size_t>(n);
    } else if (arg == "--shards") {
      const char* v = next();
      int64_t n;
      if (v == nullptr || !spade::ParseInt64(v, &n) || n < 0 || n > 1024) {
        return Fail("--shards needs an integer in [0, 1024] (0 = auto)");
      }
      options.num_shards = static_cast<size_t>(n);
    } else if (arg == "--simd") {
      const char* v = next();
      if (v == nullptr || !spade::simd::ParseSimdMode(spade::ToLower(v),
                                                      &options.mvd.simd)) {
        return Fail("--simd needs 'auto' or 'scalar'");
      }
    } else if (arg == "--stream-ingest") {
      options.ingest.enabled = true;
    } else if (arg == "--ingest-chunk") {
      const char* v = next();
      int64_t n;
      if (v == nullptr || !spade::ParseInt64(v, &n) || n <= 0) {
        return Fail("--ingest-chunk needs a positive triple count");
      }
      options.ingest.chunk_triples = static_cast<size_t>(n);
    } else if (arg == "--earlystop") {
      options.enable_earlystop = true;
    } else if (arg == "--no-derivations") {
      options.enable_derivations = false;
    } else if (arg == "--saturate") {
      options.saturate = true;
    } else if (arg == "--max-dims") {
      const char* v = next();
      int64_t n;
      if (v == nullptr || !spade::ParseInt64(v, &n) || n < 1 || n > 4) {
        return Fail("--max-dims needs an integer in [1, 4]");
      }
      options.enumeration.max_dims = static_cast<size_t>(n);
    } else if (arg == "--min-support") {
      const char* v = next();
      double r;
      if (v == nullptr || !spade::ParseDouble(v, &r) || r <= 0 || r > 1) {
        return Fail("--min-support needs a ratio in (0, 1]");
      }
      options.enumeration.min_support_ratio = r;
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      double ms;
      if (v == nullptr || !spade::ParseDouble(v, &ms) || ms < 0) {
        return Fail("--deadline-ms needs milliseconds >= 0 (0 = none)");
      }
      options.deadline_ms = ms;
    } else if (arg == "--max-bitmap-mb") {
      const char* v = next();
      int64_t mb;
      if (v == nullptr || !spade::ParseInt64(v, &mb) || mb < 0) {
        return Fail("--max-bitmap-mb needs megabytes >= 0 (0 = unlimited)");
      }
      options.max_bitmap_bytes = static_cast<uint64_t>(mb) << 20;
    } else if (arg == "--save-store") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.save_store = v;
    } else if (arg == "--load-store") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.load_store = v;
    } else if (arg == "--no-verify-snapshot") {
      options.verify_snapshot = false;
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--serve-requests") {
      const char* v = next();
      if (v == nullptr) return Usage();
      serve_requests = v;
    } else if (arg == "--incremental") {
      options.enable_incremental = true;
    } else if (arg == "--read-only") {
      read_only = true;
    } else if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr) return Usage();
      listen_spec = v;
      serve = true;
    } else if (arg == "--max-connections") {
      const char* v = next();
      int64_t n;
      if (v == nullptr || !spade::ParseInt64(v, &n) || n <= 0) {
        return Fail("--max-connections needs a positive integer");
      }
      net_options.max_connections = static_cast<size_t>(n);
    } else if (arg == "--max-inflight") {
      const char* v = next();
      int64_t n;
      if (v == nullptr || !spade::ParseInt64(v, &n) || n < 0) {
        return Fail("--max-inflight needs an integer >= 0 (0 = auto)");
      }
      net_options.max_inflight = static_cast<size_t>(n);
    } else if (arg == "--request-timeout-ms") {
      const char* v = next();
      double ms;
      if (v == nullptr || !spade::ParseDouble(v, &ms) || ms < 0) {
        return Fail("--request-timeout-ms needs milliseconds >= 0 (0 = none)");
      }
      request_timeout_ms = ms;
    } else if (arg == "--idle-timeout-ms") {
      const char* v = next();
      double ms;
      if (v == nullptr || !spade::ParseDouble(v, &ms) || ms < 0) {
        return Fail("--idle-timeout-ms needs milliseconds >= 0 (0 = never)");
      }
      net_options.idle_timeout_ms = ms;
    } else if (arg == "--drain-ms") {
      const char* v = next();
      double ms;
      if (v == nullptr || !spade::ParseDouble(v, &ms) || ms <= 0) {
        return Fail("--drain-ms needs milliseconds > 0");
      }
      net_options.drain_deadline_ms = ms;
    } else if (arg == "--list-failpoints") {
#if defined(SPADE_FAILPOINTS)
      for (const std::string& name : spade::fail::AllSiteNames()) {
        std::cout << name << "\n";
      }
      return 0;
#else
      return Fail(
          "failpoints are compiled out of this build "
          "(configure with -DSPADE_FAILPOINTS=ON to list and arm them)");
#endif
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return Usage();
      json_path = v;
    } else if (arg == "--csv") {
      const char* v = next();
      if (v == nullptr) return Usage();
      csv_path = v;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Fail("unknown option '" + arg + "'");
    }
  }

  if (data_path.empty() && options.load_store.empty()) {
    return Fail("need a DATA file or --load-store FILE");
  }

  // --- Load + offline phase. Streaming ingest owns the file read: parsing
  // overlaps store construction and the offline statistics pass, so "load"
  // and "offline" are one step in that mode. A snapshot load replaces both:
  // the pipeline attaches to the mmap'd file instead of ingesting.
  spade::Graph graph;
  if (options.ingest.enabled && spade::EndsWith(data_path, ".csv")) {
    std::cerr << "spade_cli: CSV input converts row-wise; "
                 "ignoring --stream-ingest\n";
    options.ingest.enabled = false;
  }
  spade::Spade spade(&graph, options);
  if (!options.load_store.empty()) {
    spade::Timer timer;
    spade::Status st = spade.RunOffline();
    if (!st.ok()) return Fail("snapshot load: " + st.ToString());
    std::cerr << "attached snapshot " << options.load_store << " ("
              << graph.NumTriples() << " triples) in "
              << spade::FormatDouble(timer.ElapsedMillis(), 1) << " ms\n";
  } else if (options.ingest.enabled) {
    std::ifstream in(data_path);
    if (!in) return Fail("cannot open " + data_path);
    spade::Timer timer;
    std::unique_ptr<spade::TripleChunkSource> source;
    if (spade::EndsWith(data_path, ".ttl")) {
      // Read straight into the string the source will own (Turtle needs the
      // whole document buffered; avoid a second full-size copy).
      in.seekg(0, std::ios::end);
      std::string text(static_cast<size_t>(in.tellg()), '\0');
      in.seekg(0);
      in.read(text.data(), static_cast<std::streamsize>(text.size()));
      source = std::make_unique<spade::TurtleChunkSource>(std::move(text),
                                                          &graph);
    } else {
      source = std::make_unique<spade::NTriplesChunkSource>(in, &graph);
    }
    spade::Status st = spade.RunOffline(source.get());
    if (!st.ok()) return Fail("offline phase: " + st.ToString());
    std::cerr << "ingested " << graph.NumTriples() << " triples in "
              << spade::FormatDouble(timer.ElapsedMillis(), 1) << " ms ("
              << (spade.report().ingest.num_chunks > 0
                      ? "streaming offline build"
                      : "sequential offline build; streaming inapplicable")
              << ")\n";
  } else {
    std::ifstream in(data_path);
    if (!in) return Fail("cannot open " + data_path);
    spade::Timer timer;
    spade::Status st;
    if (spade::EndsWith(data_path, ".ttl")) {
      st = spade::TurtleReader::Parse(in, &graph);
    } else if (spade::EndsWith(data_path, ".csv")) {
      spade::Csv2RdfOptions copt;
      auto rows = spade::CsvToRdf(in, copt, &graph);
      st = rows.status();
      if (rows.ok()) std::cerr << "converted " << *rows << " CSV rows\n";
    } else {
      st = spade::NTriplesReader::Parse(in, &graph);
    }
    if (!st.ok()) return Fail("load failed: " + st.ToString());
    std::cerr << "loaded " << graph.NumTriples() << " triples in "
              << spade::FormatDouble(timer.ElapsedMillis(), 1) << " ms\n";
    st = spade.RunOffline();
    if (!st.ok()) return Fail("offline phase: " + st.ToString());
  }

  // --- Serve mode: answer a stream of explore requests and exit.
  if (serve) {
    spade::Status st = spade.PrepareFactSets();
    if (!st.ok()) return Fail("fact-set selection: " + st.ToString());
    spade::persist::ServeOptions sopt;
    sopt.num_threads = options.num_threads;
    sopt.request_deadline_ms = request_timeout_ms;
    sopt.read_only = read_only;

    // TCP front end: same request core, hardened for many remote clients.
    if (!listen_spec.empty()) {
      st = spade::net::ParseHostPort(listen_spec, &net_options.listen);
      if (!st.ok()) return Fail("--listen: " + st.ToString());
      net_options.serve = sopt;
      spade::net::TcpServer server(&spade, net_options);
      st = server.Start();
      if (!st.ok()) return Fail("listen: " + st.ToString());
      // Scripts parse this exact line to discover an ephemeral port.
      std::cerr << "listening on " << net_options.listen.host << ":"
                << server.port() << "\n";
      const spade::net::TcpServeStats stats = server.Run();
      std::cerr << "served " << stats.serve.num_requests << " request"
                << (stats.serve.num_requests == 1 ? "" : "s") << " ("
                << stats.serve.num_errors << " error"
                << (stats.serve.num_errors == 1 ? "" : "s") << ", "
                << stats.serve.num_truncated << " truncated) over "
                << stats.num_connections << " connection"
                << (stats.num_connections == 1 ? "" : "s") << " in "
                << spade::FormatDouble(stats.serve.wall_ms, 1) << " ms; shed "
                << stats.num_connections_shed << " connections + "
                << stats.num_requests_shed << " requests, "
                << stats.num_io_errors << " I/O errors, "
                << stats.num_idle_closed << " idle-closed; drain "
                << (stats.drained_clean ? "clean" : "HARD-STOPPED") << "\n";
      return stats.drained_clean ? 0 : 1;
    }

    spade::persist::InsightServer server(&spade, sopt);
    spade::persist::ServeStats stats;
    if (!serve_requests.empty()) {
      std::ifstream reqs(serve_requests);
      if (!reqs) return Fail("cannot open " + serve_requests);
      stats = server.Serve(reqs, std::cout);
    } else {
      stats = server.Serve(std::cin, std::cout);
    }
    std::cerr << "served " << stats.num_requests << " request"
              << (stats.num_requests == 1 ? "" : "s") << " ("
              << stats.num_errors << " error"
              << (stats.num_errors == 1 ? "" : "s") << ") in "
              << spade::FormatDouble(stats.wall_ms, 1) << " ms\n";
    return 0;
  }

  // --- Run online.
  auto insights = spade.RunOnline();
  if (!insights.ok()) return Fail("online phase: " + insights.status().ToString());

  const spade::SpadeReport& report = spade.report();
  std::cerr << "pipeline: " << report.num_cfs << " fact sets, "
            << report.num_lattices << " lattices, "
            << report.num_candidate_aggregates << " candidate aggregates ("
            << report.num_pruned_aggregates << " pruned early); offline "
            << spade::FormatDouble(report.timings.offline_wall_ms, 1)
            << " ms, online "
            << spade::FormatDouble(report.timings.online_wall_ms, 1) << " ms ("
            << report.num_threads_used << " thread"
            << (report.num_threads_used == 1 ? "" : "s") << ", "
            << report.simd_kernel << " fold)";
  if (!report.shard_fact_counts.empty()) {
    std::cerr << "; " << report.num_shards_used << " shards/CFS [";
    for (size_t s = 0; s < report.shard_fact_counts.size(); ++s) {
      std::cerr << (s == 0 ? "" : "/") << report.shard_fact_counts[s];
    }
    std::cerr << " facts], merge "
              << spade::FormatDouble(report.shard_merge_ms, 1) << " ms";
  }
  if (report.ingest.num_chunks > 0) {
    std::cerr << "; ingest " << report.ingest.num_chunks << " chunk"
              << (report.ingest.num_chunks == 1 ? "" : "s") << " (peak "
              << report.ingest.peak_chunk_triples << " triples), wall "
              << spade::FormatDouble(report.ingest.wall_ms, 1) << " ms (parse "
              << spade::FormatDouble(report.ingest.parse_ms, 1)
              << " ms, overlapped work "
              << spade::FormatDouble(report.ingest.overlap_ms, 1) << " ms)";
  }
  if (report.lattice_workers_used > 0) {
    std::cerr << "; lattice compute " << report.lattice_workers_used
              << " worker" << (report.lattice_workers_used == 1 ? "" : "s")
              << ", wall " << spade::FormatDouble(report.lattice_wall_ms, 1)
              << " ms (work " << spade::FormatDouble(report.lattice_work_ms, 1)
              << " ms, peak " << report.lattice_peak_partial_cells
              << " partial cells, peak bitmaps " << report.peak_bitmap_bytes
              << " B)";
  }
  if (report.truncated) {
    std::cerr << "; TRUNCATED (" << spade::CancelReasonName(report.cancel_reason)
              << "): " << report.num_cfs_completed << "/" << report.num_cfs
              << " fact sets completed, " << report.num_groups_skipped
              << " groups skipped";
  }
  std::cerr << "\n";

  if (!quiet) {
    spade::RenderOptions ropt;
    int rank = 1;
    for (const auto& insight : *insights) {
      std::cout << "\n#" << rank++ << "  ";
      spade::RenderInsight(spade.store(), insight, ropt, std::cout);
    }
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) return Fail("cannot write " + json_path);
    spade::ExportInsightsJson(spade.store(), *insights,
                              options.interestingness, out);
    std::cerr << "wrote " << json_path << "\n";
  }
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) return Fail("cannot write " + csv_path);
    spade::ExportInsightsCsv(spade.store(), *insights, out);
    std::cerr << "wrote " << csv_path << "\n";
  }
  return 0;
}
