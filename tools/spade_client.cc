// spade_client — drive a spade_cli --listen server from the shell.
//
//   spade_client HOST:PORT [options] [REQUEST...]
//
//   HOST:PORT            the address the server printed ("listening on ...")
//   REQUEST...           request lines to send (each further positional
//                        argument is one request); with none given, requests
//                        are read from stdin, one per line
//   --attempts N         tries per request, first included     (default 8)
//   --connect-timeout-ms MS                                    (default 5000)
//   --io-timeout-ms MS   per-read/write timeout inside a block (default 30000)
//   --backoff-ms MS      base retry backoff (exponential, full jitter,
//                        capped at 100x base)                  (default 25)
//   --seed N             jitter seed                           (default 1)
//   --quiet              suppress the per-session stats line on stderr
//
// The client speaks the serve line protocol (see src/persist/serve.h), one
// request at a time, and owns the retry half of the server's load-shedding
// contract: `busy` replies, refused connects and connections dying
// mid-response are retried with jittered exponential backoff; `error:`
// replies are the request's own fault and are printed, not retried.
//
// Exit code 0 when every request got a reply (error: replies included),
// 1 when any request exhausted its retries or the arguments were bad.

#include <iostream>
#include <string>
#include <vector>

#include "src/net/line_client.h"
#include "src/net/net_util.h"
#include "src/util/string_util.h"

namespace {

int Fail(const std::string& message) {
  std::cerr << "spade_client: " << message << "\n";
  return 1;
}

int Usage() {
  std::cerr << "usage: spade_client HOST:PORT [--attempts N] "
               "[--connect-timeout-ms MS] [--io-timeout-ms MS]\n"
               "                    [--backoff-ms MS] [--seed N] [--quiet] "
               "[REQUEST...]\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (!spade::net::Supported()) {
    return Fail("TCP networking is unsupported on this platform");
  }

  spade::net::LineClientOptions options;
  spade::Status st = spade::net::ParseHostPort(argv[1], &options.server);
  if (!st.ok()) return Fail(st.ToString());

  std::vector<std::string> requests;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--attempts") {
      const char* v = next();
      int64_t n;
      if (v == nullptr || !spade::ParseInt64(v, &n) || n <= 0) {
        return Fail("--attempts needs a positive integer");
      }
      options.max_attempts = static_cast<size_t>(n);
    } else if (arg == "--connect-timeout-ms") {
      const char* v = next();
      double ms;
      if (v == nullptr || !spade::ParseDouble(v, &ms) || ms <= 0) {
        return Fail("--connect-timeout-ms needs milliseconds > 0");
      }
      options.connect_timeout_ms = ms;
    } else if (arg == "--io-timeout-ms") {
      const char* v = next();
      double ms;
      if (v == nullptr || !spade::ParseDouble(v, &ms) || ms <= 0) {
        return Fail("--io-timeout-ms needs milliseconds > 0");
      }
      options.io_timeout_ms = ms;
    } else if (arg == "--backoff-ms") {
      const char* v = next();
      double ms;
      if (v == nullptr || !spade::ParseDouble(v, &ms) || ms <= 0) {
        return Fail("--backoff-ms needs milliseconds > 0");
      }
      options.backoff_base_ms = ms;
      options.backoff_max_ms = ms * 100;
    } else if (arg == "--seed") {
      const char* v = next();
      int64_t n;
      if (v == nullptr || !spade::ParseInt64(v, &n) || n < 0) {
        return Fail("--seed needs an integer >= 0");
      }
      options.seed = static_cast<uint64_t>(n);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown option '" + arg + "'");
    } else {
      requests.push_back(arg);
    }
  }

  // SIGPIPE must never kill the client either: a server dying mid-send is a
  // retryable transport fault.
  spade::net::ScopedIgnoreSigpipe ignore_sigpipe;
  spade::net::LineClient client(options);

  auto run_one = [&](const std::string& line) -> bool {
    const std::string_view trimmed = spade::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') return true;
    spade::Result<std::string> reply = client.Request(std::string(trimmed));
    if (!reply.ok()) {
      std::cerr << "spade_client: " << reply.status().ToString() << "\n";
      return false;
    }
    std::cout << *reply;
    std::cout.flush();
    return true;
  };

  bool ok = true;
  if (!requests.empty()) {
    for (const std::string& line : requests) ok = run_one(line) && ok;
  } else {
    std::string line;
    while (std::getline(std::cin, line)) ok = run_one(line) && ok;
  }

  const spade::net::LineClientStats& stats = client.stats();
  if (!quiet) {
    std::cerr << "spade_client: " << stats.num_requests << " request"
              << (stats.num_requests == 1 ? "" : "s") << ", "
              << stats.num_retries << " retr"
              << (stats.num_retries == 1 ? "y" : "ies") << ", "
              << stats.num_busy << " busy, " << stats.num_reconnects
              << " connect" << (stats.num_reconnects == 1 ? "" : "s") << "\n";
  }
  return ok ? 0 : 1;
}
